//! `cg` — conjugate gradient on a 180×360 grid, 630 iterations
//! ("HPF by MIT").
//!
//! The operator is the implicit 5-point Laplacian over the grid interior.
//! Each iteration runs one ghost-column stencil mat-vec plus **two global
//! dot-product reductions** — the reductions are what make `cg` the
//! application where the paper's message-passing backend loses worst
//! ("particularly so in cg", §6), while the stencil transfers are captured
//! by the compiler (68.7% of misses removed).

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, ReduceSpec, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;

/// Array ids by declaration order.
pub const X: ArrayId = ArrayId(0);
pub const R: ArrayId = ArrayId(1);
pub const P: ArrayId = ArrayId(2);
pub const Q: ArrayId = ArrayId(3);
pub const BV: ArrayId = ArrayId(4);

/// Problem-size parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
    pub m: usize,
    pub iters: i64,
}

impl Params {
    /// Table 2: 180×360 matrix, converges in 630 iterations.
    pub fn paper() -> Self {
        Params {
            n: 180,
            m: 360,
            iters: 630,
        }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper(),
            Scale::Bench => Params {
                n: 96,
                m: 192,
                iters: 80,
            },
            Scale::Test => Params {
                n: 40,
                m: 64,
                iters: 15,
            },
        }
    }

    /// Grow per-superstep work ~linearly with `factor` by stretching the
    /// row extent (each CG step is linear in `n`).
    pub fn scaled(mut self, factor: usize) -> Self {
        self.n *= factor.max(1);
        self
    }
}

fn init_kernel(ctx: &mut KernelCtx) {
    let b = ctx.h(BV);
    let x = ctx.h(X);
    let r = ctx.h(R);
    let p = ctx.h(P);
    let q = ctx.h(Q);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let v = ((i * 7 + j * 3) % 23) as f64 * 0.04;
            ctx.mem[b.at2(i, j)] = v;
            ctx.mem[x.at2(i, j)] = 0.0;
            ctx.mem[r.at2(i, j)] = v; // r = b − A·0 = b
            ctx.mem[p.at2(i, j)] = v;
            ctx.mem[q.at2(i, j)] = 0.0;
        }
    }
}

fn rr_kernel(ctx: &mut KernelCtx) {
    let r = ctx.h(R);
    let mut acc = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let v = ctx.mem[r.at2(i, j)];
            acc += v * v;
        }
    }
    ctx.partial = acc;
}

fn matvec_kernel(ctx: &mut KernelCtx) {
    let p = ctx.h(P);
    let q = ctx.h(Q);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[q.at2(i, j)] = 4.0 * ctx.mem[p.at2(i, j)]
                - ctx.mem[p.at2(i - 1, j)]
                - ctx.mem[p.at2(i + 1, j)]
                - ctx.mem[p.at2(i, j - 1)]
                - ctx.mem[p.at2(i, j + 1)];
        }
    }
}

fn pq_kernel(ctx: &mut KernelCtx) {
    let p = ctx.h(P);
    let q = ctx.h(Q);
    let mut acc = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            acc += ctx.mem[p.at2(i, j)] * ctx.mem[q.at2(i, j)];
        }
    }
    ctx.partial = acc;
}

fn xr_kernel(ctx: &mut KernelCtx) {
    let x = ctx.h(X);
    let r = ctx.h(R);
    let p = ctx.h(P);
    let q = ctx.h(Q);
    let alpha = ctx.scalar("alpha");
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[x.at2(i, j)] += alpha * ctx.mem[p.at2(i, j)];
            ctx.mem[r.at2(i, j)] -= alpha * ctx.mem[q.at2(i, j)];
        }
    }
}

fn pupd_kernel(ctx: &mut KernelCtx) {
    let r = ctx.h(R);
    let p = ctx.h(P);
    let beta = ctx.scalar("beta");
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[p.at2(i, j)] = ctx.mem[r.at2(i, j)] + beta * ctx.mem[p.at2(i, j)];
        }
    }
}

/// Build the cg program.
pub fn build(p: &Params) -> Program {
    let t = Var("t");
    let (n, m) = (p.n as i64, p.m as i64);
    let mut b = Program::builder();
    let x = b.array("x", &[p.n, p.m], Dist::Block);
    let r = b.array("r", &[p.n, p.m], Dist::Block);
    let pp = b.array("p", &[p.n, p.m], Dist::Block);
    let q = b.array("q", &[p.n, p.m], Dist::Block);
    let bv = b.array("b", &[p.n, p.m], Dist::Block);
    assert_eq!((x, r, pp, q, bv), (X, R, P, Q, BV));
    b.scalar("rho", 0.0)
        .scalar("pq", 0.0)
        .scalar("alpha", 0.0)
        .scalar("rho_new", 0.0)
        .scalar("beta", 0.0);
    let all0 = SymRange::new(0, n - 1);
    let all1 = SymRange::new(0, m - 1);
    let int0 = SymRange::new(1, n - 2);
    let int1 = SymRange::new(1, m - 2);
    let at = |d: usize, c: i64| Subscript::Loop(d, c);
    let here = vec![Subscript::loop_var(0), Subscript::loop_var(1)];

    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![int0.clone(), int1.clone()],
        dist: CompDist::Owner(bv),
        refs: vec![
            ARef::write(bv, here.clone()),
            ARef::write(x, here.clone()),
            ARef::write(r, here.clone()),
            ARef::write(pp, here.clone()),
            ARef::write(q, here.clone()),
        ],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 150,
        reduction: None,
    }));
    b.stmt(Stmt::Par(ParLoop {
        name: "rho0",
        iter: vec![int0.clone(), int1.clone()],
        dist: CompDist::Owner(r),
        refs: vec![ARef::read(r, here.clone())],
        kernel: Kernel::new(rr_kernel),
        cost_per_iter_ns: 60,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "rho",
        }),
    }));
    b.stmt(Stmt::Time {
        var: t,
        count: p.iters,
        body: vec![
            Stmt::Par(ParLoop {
                name: "matvec",
                iter: vec![int0.clone(), int1.clone()],
                dist: CompDist::Owner(q),
                refs: vec![
                    ARef::read(pp, vec![at(0, -1), at(1, 0)]),
                    ARef::read(pp, vec![at(0, 1), at(1, 0)]),
                    ARef::read(pp, vec![at(0, 0), at(1, -1)]),
                    ARef::read(pp, vec![at(0, 0), at(1, 1)]),
                    ARef::write(q, here.clone()),
                ],
                kernel: Kernel::new(matvec_kernel),
                cost_per_iter_ns: 520,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "pq",
                iter: vec![int0.clone(), int1.clone()],
                dist: CompDist::Owner(q),
                refs: vec![ARef::read(pp, here.clone()), ARef::read(q, here.clone())],
                kernel: Kernel::new(pq_kernel),
                cost_per_iter_ns: 90,
                reduction: Some(ReduceSpec {
                    op: ReduceOp::Sum,
                    target: "pq",
                }),
            }),
            Stmt::Scalar {
                name: "alpha",
                f: |s| {
                    let pq = s["pq"];
                    if pq.abs() < 1e-300 {
                        0.0
                    } else {
                        s["rho"] / pq
                    }
                },
            },
            Stmt::Par(ParLoop {
                name: "xr",
                iter: vec![int0.clone(), int1.clone()],
                dist: CompDist::Owner(x),
                refs: vec![
                    ARef::read(pp, here.clone()),
                    ARef::read(q, here.clone()),
                    ARef::write(x, here.clone()),
                    ARef::write(r, here.clone()),
                ],
                kernel: Kernel::new(xr_kernel),
                cost_per_iter_ns: 180,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "rr",
                iter: vec![int0.clone(), int1.clone()],
                dist: CompDist::Owner(r),
                refs: vec![ARef::read(r, here.clone())],
                kernel: Kernel::new(rr_kernel),
                cost_per_iter_ns: 60,
                reduction: Some(ReduceSpec {
                    op: ReduceOp::Sum,
                    target: "rho_new",
                }),
            }),
            Stmt::Scalar {
                name: "beta",
                f: |s| {
                    let rho = s["rho"];
                    if rho.abs() < 1e-300 {
                        0.0
                    } else {
                        s["rho_new"] / rho
                    }
                },
            },
            Stmt::Scalar {
                name: "rho",
                f: |s| s["rho_new"],
            },
            Stmt::Par(ParLoop {
                name: "pupd",
                iter: vec![int0.clone(), int1.clone()],
                dist: CompDist::Owner(pp),
                refs: vec![
                    ARef::read(r, here.clone()),
                    ARef::read(pp, here.clone()),
                    ARef::write(pp, here.clone()),
                ],
                kernel: Kernel::new(pupd_kernel),
                cost_per_iter_ns: 110,
                reduction: None,
            }),
        ],
    });
    let _ = (all0, all1);
    b.build()
}

/// Table 2 metadata.
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "cg",
        source: "HPF by MIT",
        problem: format!("{}x{} matrix, {} iters", p.n, p.m, p.iters),
        program: build(p),
        iters: p.iters,
    }
}

/// Sequential reference replicating the parallel reduction order (partial
/// sums per owner chunk combined in node order) so results match the
/// simulator bit-for-bit. Returns final `x` and the residual `rho`.
pub fn reference(p: &Params, nprocs: usize) -> (Vec<f64>, f64) {
    let (n, m) = (p.n, p.m);
    let at = |i: usize, j: usize| i + j * n;
    let chunk = m.div_ceil(nprocs);
    let owner_cols = |pid: usize| -> std::ops::Range<usize> {
        let lo = pid * chunk;
        lo.min(m)..((pid + 1) * chunk).min(m)
    };
    // Reduce over the interior, chunk by chunk in node order.
    let reduce = |f: &dyn Fn(usize, usize) -> f64| -> f64 {
        let mut total = 0.0;
        for pid in 0..nprocs {
            let mut part = 0.0;
            for j in owner_cols(pid) {
                if j == 0 || j >= m - 1 {
                    continue;
                }
                for i in 1..n - 1 {
                    part += f(i, j);
                }
            }
            total += part;
        }
        total
    };
    let mut x = vec![0.0f64; n * m];
    let mut r = vec![0.0f64; n * m];
    let mut pv = vec![0.0f64; n * m];
    let mut q = vec![0.0f64; n * m];
    for j in 1..m - 1 {
        for i in 1..n - 1 {
            let v = ((i * 7 + j * 3) % 23) as f64 * 0.04;
            r[at(i, j)] = v;
            pv[at(i, j)] = v;
        }
    }
    let mut rho = reduce(&|i, j| r[at(i, j)] * r[at(i, j)]);
    for _ in 0..p.iters {
        for j in 1..m - 1 {
            for i in 1..n - 1 {
                q[at(i, j)] = 4.0 * pv[at(i, j)]
                    - pv[at(i - 1, j)]
                    - pv[at(i + 1, j)]
                    - pv[at(i, j - 1)]
                    - pv[at(i, j + 1)];
            }
        }
        let pq = reduce(&|i, j| pv[at(i, j)] * q[at(i, j)]);
        let alpha = if pq.abs() < 1e-300 { 0.0 } else { rho / pq };
        for j in 1..m - 1 {
            for i in 1..n - 1 {
                x[at(i, j)] += alpha * pv[at(i, j)];
                r[at(i, j)] -= alpha * q[at(i, j)];
            }
        }
        let rho_new = reduce(&|i, j| r[at(i, j)] * r[at(i, j)]);
        let beta = if rho.abs() < 1e-300 {
            0.0
        } else {
            rho_new / rho
        };
        rho = rho_new;
        for j in 1..m - 1 {
            for i in 1..n - 1 {
                pv[at(i, j)] = r[at(i, j)] + beta * pv[at(i, j)];
            }
        }
    }
    (x, rho)
}
