//! `pde` — the Genesis PDE benchmark's RELAX routine: 3-D Poisson
//! relaxation on a 128³ grid, 40 iterations ("Genesis. HPF by PGI").
//!
//! A 7-point stencil sweep `v = (Σ neighbors(u) − h²·f) / 6` over the
//! grid interior, then copy-back, with the last (plane) dimension BLOCK
//! distributed. Communication is one ghost *plane* (128² elements,
//! contiguous in column-major order) per neighbor per sweep — large
//! contiguous sections, which is why the paper removes 74.6% of its
//! misses and 58.6% of its communication time.

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, ReduceSpec, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;

/// Array ids by declaration order.
pub const U: ArrayId = ArrayId(0);
pub const V: ArrayId = ArrayId(1);
pub const F: ArrayId = ArrayId(2);

/// Problem-size parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub g: usize,
    pub iters: i64,
}

impl Params {
    /// Table 2: grid size 128, 40 iterations (RELAX routine only).
    pub fn paper() -> Self {
        Params { g: 128, iters: 40 }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper(),
            Scale::Bench => Params { g: 96, iters: 8 },
            Scale::Test => Params { g: 34, iters: 3 },
        }
    }

    /// Grow total work ~linearly with `factor`: the RELAX sweep is cubic
    /// in `g`, so the grid edge stretches by the cube root of `factor`.
    pub fn scaled(mut self, factor: usize) -> Self {
        self.g *= crate::dim_scale(factor, 3);
        self
    }
}

fn init_kernel(ctx: &mut KernelCtx) {
    let u = ctx.h(U);
    let f = ctx.h(F);
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                ctx.mem[u.at3(i, j, k)] = ((i + 2 * j + 3 * k) % 17) as f64 * 0.05;
                ctx.mem[f.at3(i, j, k)] = ((i * j + k) % 13) as f64 * 0.02;
            }
        }
    }
}

const H2: f64 = 0.015625; // h² for a unit cube at grid 128 (shape only)

fn relax_kernel(ctx: &mut KernelCtx) {
    let u = ctx.h(U);
    let v = ctx.h(V);
    let f = ctx.h(F);
    let inv6 = 1.0 / 6.0;
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                let s = ctx.mem[u.at3(i - 1, j, k)]
                    + ctx.mem[u.at3(i + 1, j, k)]
                    + ctx.mem[u.at3(i, j - 1, k)]
                    + ctx.mem[u.at3(i, j + 1, k)]
                    + ctx.mem[u.at3(i, j, k - 1)]
                    + ctx.mem[u.at3(i, j, k + 1)];
                ctx.mem[v.at3(i, j, k)] = (s - H2 * ctx.mem[f.at3(i, j, k)]) * inv6;
            }
        }
    }
}

fn copy_kernel(ctx: &mut KernelCtx) {
    let u = ctx.h(U);
    let v = ctx.h(V);
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                ctx.mem[u.at3(i, j, k)] = ctx.mem[v.at3(i, j, k)];
            }
        }
    }
}

fn norm_kernel(ctx: &mut KernelCtx) {
    let u = ctx.h(U);
    let mut acc = 0.0;
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                let x = ctx.mem[u.at3(i, j, k)];
                acc += x * x;
            }
        }
    }
    ctx.partial = acc;
}

/// Build the pde program.
pub fn build(p: &Params) -> Program {
    let t = Var("t");
    let g = p.g as i64;
    let mut b = Program::builder();
    let u = b.array("u", &[p.g, p.g, p.g], Dist::Block);
    let v = b.array("v", &[p.g, p.g, p.g], Dist::Block);
    let f = b.array("f", &[p.g, p.g, p.g], Dist::Block);
    assert_eq!((u, v, f), (U, V, F));
    b.scalar("norm", 0.0);
    let all = SymRange::new(0, g - 1);
    let interior = SymRange::new(1, g - 2);
    let iv = |d: usize, c: i64| Subscript::Loop(d, c);
    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![all.clone(), all.clone(), all.clone()],
        dist: CompDist::Owner(u),
        refs: vec![
            ARef::write(u, vec![iv(0, 0), iv(1, 0), iv(2, 0)]),
            ARef::write(f, vec![iv(0, 0), iv(1, 0), iv(2, 0)]),
        ],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 160,
        reduction: None,
    }));
    b.stmt(Stmt::Time {
        var: t,
        count: p.iters,
        body: vec![
            Stmt::Par(ParLoop {
                name: "relax",
                iter: vec![interior.clone(), interior.clone(), interior.clone()],
                dist: CompDist::Owner(v),
                refs: vec![
                    ARef::read(u, vec![iv(0, -1), iv(1, 0), iv(2, 0)]),
                    ARef::read(u, vec![iv(0, 1), iv(1, 0), iv(2, 0)]),
                    ARef::read(u, vec![iv(0, 0), iv(1, -1), iv(2, 0)]),
                    ARef::read(u, vec![iv(0, 0), iv(1, 1), iv(2, 0)]),
                    ARef::read(u, vec![iv(0, 0), iv(1, 0), iv(2, -1)]),
                    ARef::read(u, vec![iv(0, 0), iv(1, 0), iv(2, 1)]),
                    ARef::read(f, vec![iv(0, 0), iv(1, 0), iv(2, 0)]),
                    ARef::write(v, vec![iv(0, 0), iv(1, 0), iv(2, 0)]),
                ],
                kernel: Kernel::new(relax_kernel),
                cost_per_iter_ns: 1250,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "copy",
                iter: vec![interior.clone(), interior.clone(), interior.clone()],
                dist: CompDist::Owner(u),
                refs: vec![
                    ARef::read(v, vec![iv(0, 0), iv(1, 0), iv(2, 0)]),
                    ARef::write(u, vec![iv(0, 0), iv(1, 0), iv(2, 0)]),
                ],
                kernel: Kernel::new(copy_kernel),
                cost_per_iter_ns: 340,
                reduction: None,
            }),
        ],
    });
    b.stmt(Stmt::Par(ParLoop {
        name: "norm",
        iter: vec![all.clone(), all.clone(), all],
        dist: CompDist::Owner(u),
        refs: vec![ARef::read(u, vec![iv(0, 0), iv(1, 0), iv(2, 0)])],
        kernel: Kernel::new(norm_kernel),
        cost_per_iter_ns: 60,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "norm",
        }),
    }));
    b.build()
}

/// Table 2 metadata.
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "pde",
        source: "Genesis. HPF by PGI",
        problem: format!("grid size {}, {} iters (RELAX routine only)", p.g, p.iters),
        program: build(p),
        iters: p.iters,
    }
}

/// Sequential reference: final `u` and its squared norm.
pub fn reference(p: &Params) -> (Vec<f64>, f64) {
    let g = p.g;
    let at = |i: usize, j: usize, k: usize| i + j * g + k * g * g;
    let mut u = vec![0.0f64; g * g * g];
    let mut v = vec![0.0f64; g * g * g];
    let mut f = vec![0.0f64; g * g * g];
    for k in 0..g {
        for j in 0..g {
            for i in 0..g {
                u[at(i, j, k)] = ((i + 2 * j + 3 * k) % 17) as f64 * 0.05;
                f[at(i, j, k)] = ((i * j + k) % 13) as f64 * 0.02;
            }
        }
    }
    let inv6 = 1.0 / 6.0;
    for _ in 0..p.iters {
        for k in 1..g - 1 {
            for j in 1..g - 1 {
                for i in 1..g - 1 {
                    let s = u[at(i - 1, j, k)]
                        + u[at(i + 1, j, k)]
                        + u[at(i, j - 1, k)]
                        + u[at(i, j + 1, k)]
                        + u[at(i, j, k - 1)]
                        + u[at(i, j, k + 1)];
                    v[at(i, j, k)] = (s - H2 * f[at(i, j, k)]) * inv6;
                }
            }
        }
        for k in 1..g - 1 {
            for j in 1..g - 1 {
                for i in 1..g - 1 {
                    u[at(i, j, k)] = v[at(i, j, k)];
                }
            }
        }
    }
    let norm = u.iter().map(|x| x * x).sum();
    (u, norm)
}
