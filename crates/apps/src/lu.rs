//! `lu` — right-looking LU decomposition without pivoting, 1024×1024,
//! CYCLIC column distribution, 5 runs ("Stanford. HPF by authors").
//!
//! Each step `k` the owner of column `k` scales its sub-diagonal, then the
//! column is **broadcast** to all processors for the trailing-submatrix
//! update — the triangular loop makes the broadcast shrink with `k`, so
//! "in the later columns the edge effects limit the efficacy" of the
//! block-granularity optimization (§6). The paper reports timings for 5
//! runs because the first one pays the remote page-mapping cost.

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, Stmt, Subscript,
};
use fgdsm_section::{Affine, SymRange, Var};

/// Array id by declaration order.
pub const A: ArrayId = ArrayId(0);

const K: Var = Var("k");

/// Problem-size parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
    pub runs: i64,
}

impl Params {
    /// Table 2: 1024×1024 matrix, 5 runs.
    pub fn paper() -> Self {
        Params { n: 1024, runs: 5 }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper(),
            Scale::Bench => Params { n: 512, runs: 1 },
            Scale::Test => Params { n: 40, runs: 1 },
        }
    }

    /// Grow total work ~linearly with `factor`: factorization is cubic
    /// in `n`, so the matrix edge stretches by the cube root of `factor`.
    pub fn scaled(mut self, factor: usize) -> Self {
        self.n *= crate::dim_scale(factor, 3);
        self
    }
}

/// Matrix entry: diagonally dominant so factoring without pivoting is
/// well-conditioned.
fn entry(i: i64, j: i64, n: usize) -> f64 {
    if i == j {
        n as f64
    } else {
        1.0 / ((i - j).abs() as f64 + 1.0)
    }
}

fn init_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let n = ctx.iter[0].count() as usize;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = entry(i, j, n);
        }
    }
}

fn scale_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let k = ctx.sym(K);
    let pivot = ctx.mem[a.at2(k, k)];
    let inv = 1.0 / pivot;
    for i in ctx.iter[0].iter() {
        ctx.mem[a.at2(i, k)] *= inv;
    }
}

fn update_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let k = ctx.sym(K);
    for j in ctx.iter[1].iter() {
        let akj = ctx.mem[a.at2(k, j)];
        for i in ctx.iter[0].iter() {
            let aik = ctx.mem[a.at2(i, k)];
            ctx.mem[a.at2(i, j)] -= aik * akj;
        }
    }
}

/// Build the lu program.
pub fn build(p: &Params) -> Program {
    let r = Var("run");
    let n = p.n as i64;
    let mut b = Program::builder();
    let a = b.array("a", &[p.n, p.n], Dist::Cyclic);
    assert_eq!(a, A);
    let below_k = SymRange::new(Affine::var(K).plus_const(1), n - 1);
    let init = Stmt::Par(ParLoop {
        name: "init",
        iter: vec![SymRange::new(0, n - 1), SymRange::new(0, n - 1)],
        dist: CompDist::Owner(a),
        refs: vec![ARef::write(
            a,
            vec![Subscript::loop_var(0), Subscript::loop_var(1)],
        )],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 100,
        reduction: None,
    });
    let scale = Stmt::Par(ParLoop {
        name: "scale",
        iter: vec![below_k.clone()],
        dist: CompDist::OwnerOfIndex(a, Affine::var(K)),
        refs: vec![
            ARef::read(
                a,
                vec![Subscript::At(Affine::var(K)), Subscript::At(Affine::var(K))],
            ),
            ARef::read(
                a,
                vec![
                    Subscript::Span(below_k.clone()),
                    Subscript::At(Affine::var(K)),
                ],
            ),
            ARef::write(
                a,
                vec![
                    Subscript::Span(below_k.clone()),
                    Subscript::At(Affine::var(K)),
                ],
            ),
        ],
        kernel: Kernel::new(scale_kernel),
        cost_per_iter_ns: 180,
        reduction: None,
    });
    let update = Stmt::Par(ParLoop {
        name: "update",
        iter: vec![below_k.clone(), below_k.clone()],
        dist: CompDist::Owner(a),
        refs: vec![
            // Pivot column below the diagonal: the broadcast.
            ARef::read(
                a,
                vec![
                    Subscript::Span(below_k.clone()),
                    Subscript::At(Affine::var(K)),
                ],
            ),
            // Pivot row element a(k, j): owned with column j.
            ARef::read(
                a,
                vec![Subscript::At(Affine::var(K)), Subscript::loop_var(1)],
            ),
            ARef::read(a, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
            ARef::write(a, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
        ],
        kernel: Kernel::new(update_kernel),
        cost_per_iter_ns: 130,
        reduction: None,
    });
    b.stmt(Stmt::Time {
        var: r,
        count: p.runs,
        body: vec![
            init,
            Stmt::Time {
                var: K,
                count: n - 1,
                body: vec![scale, update],
            },
        ],
    });
    b.build()
}

/// Table 2 metadata.
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "lu",
        source: "Stanford. HPF by authors",
        problem: format!("{0}x{0} matrix ({1} runs)", p.n, p.runs),
        program: build(p),
        iters: p.runs,
    }
}

/// Sequential reference: the factored matrix (L below the unit diagonal,
/// U on and above it).
pub fn reference(p: &Params) -> Vec<f64> {
    let n = p.n;
    let at = |i: usize, j: usize| i + j * n;
    let mut a = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            a[at(i, j)] = entry(i as i64, j as i64, n);
        }
    }
    for k in 0..n - 1 {
        let inv = 1.0 / a[at(k, k)];
        for i in k + 1..n {
            a[at(i, k)] *= inv;
        }
        for j in k + 1..n {
            let akj = a[at(k, j)];
            for i in k + 1..n {
                let aik = a[at(i, k)];
                a[at(i, j)] -= aik * akj;
            }
        }
    }
    a
}
