//! Trace-invariant integration checks on a real application run.
//!
//! The engine already asserts protocol consistency, balanced traffic and
//! monotone node clocks after *every* run; this test exercises the same
//! invariants explicitly through the [`ClusterReport`] accessors on a
//! jacobi run, per backend, so a bookkeeping regression fails with a
//! named counter rather than a deep engine panic.

use fgdsm_apps::{jacobi, Scale};
use fgdsm_hpf::{execute, execute_traced, ExecConfig};

const NPROCS: usize = 4;

#[test]
fn jacobi_traffic_balances_on_every_backend() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    for (name, cfg) in [
        ("sm-unopt", ExecConfig::sm_unopt(NPROCS)),
        ("sm-opt", ExecConfig::sm_opt(NPROCS)),
        ("mp", ExecConfig::mp(NPROCS)),
    ] {
        let r = execute(&prog, &cfg);
        let rep = &r.report;
        assert!(
            rep.total_msgs() > 0,
            "{name}: a {NPROCS}-node jacobi run must communicate"
        );
        assert_eq!(
            rep.total_msgs(),
            rep.total_msgs_recv(),
            "{name}: sent messages must equal received messages"
        );
        assert_eq!(
            rep.total_bytes(),
            rep.total_bytes_recv(),
            "{name}: sent bytes must equal received bytes"
        );
        assert!(rep.traffic_balanced(), "{name}: traffic imbalance");
        // Nothing received can outrun the run itself: the makespan bounds
        // every node's compute time (clock monotonicity is asserted
        // inside the engine on every run).
        for (i, n) in rep.nodes.iter().enumerate() {
            assert!(
                n.compute_ns <= rep.makespan_ns,
                "{name}: node {i} compute time exceeds the makespan"
            );
        }
        assert!(rep.makespan_ns > 0, "{name}: empty makespan");
    }
}

#[test]
fn jacobi_trace_export_carries_the_balanced_counters() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let (r, trace) = execute_traced(&prog, &ExecConfig::sm_opt(NPROCS));
    assert!(r.report.traffic_balanced());
    // The structured trace is the source the report aggregates fold
    // from; it must exist, name every node, and record message events.
    assert!(!trace.is_empty(), "empty trace export");
    for n in 0..NPROCS {
        assert!(
            trace.contains(&format!("\"node\":{n}")) || trace.contains(&format!("\"node\": {n}")),
            "trace export missing node {n}"
        );
    }
}
