//! Trace-invariant integration checks on a real application run.
//!
//! The engine already asserts protocol consistency, balanced traffic and
//! monotone node clocks after *every* run; this test exercises the same
//! invariants explicitly through the [`ClusterReport`] accessors on a
//! jacobi run, per backend, so a bookkeeping regression fails with a
//! named counter rather than a deep engine panic.

use fgdsm_apps::{jacobi, Scale};
use fgdsm_hpf::{execute, execute_profiled, execute_traced, ExecConfig};
use std::collections::BTreeSet;

const NPROCS: usize = 4;

#[test]
fn jacobi_traffic_balances_on_every_backend() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    for (name, cfg) in [
        ("sm-unopt", ExecConfig::sm_unopt(NPROCS)),
        ("sm-opt", ExecConfig::sm_opt(NPROCS)),
        ("mp", ExecConfig::mp(NPROCS)),
    ] {
        let r = execute(&prog, &cfg);
        let rep = &r.report;
        assert!(
            rep.total_msgs() > 0,
            "{name}: a {NPROCS}-node jacobi run must communicate"
        );
        assert_eq!(
            rep.total_msgs(),
            rep.total_msgs_recv(),
            "{name}: sent messages must equal received messages"
        );
        assert_eq!(
            rep.total_bytes(),
            rep.total_bytes_recv(),
            "{name}: sent bytes must equal received bytes"
        );
        assert!(rep.traffic_balanced(), "{name}: traffic imbalance");
        // Nothing received can outrun the run itself: the makespan bounds
        // every node's compute time (clock monotonicity is asserted
        // inside the engine on every run).
        for (i, n) in rep.nodes.iter().enumerate() {
            assert!(
                n.compute_ns <= rep.makespan_ns,
                "{name}: node {i} compute time exceeds the makespan"
            );
        }
        assert!(rep.makespan_ns > 0, "{name}: empty makespan");
    }
}

/// Per-superstep interval stats must decompose the whole run: folding
/// the loop table back together reproduces the cluster-summed counters
/// (the engine asserts the per-node form after every run; this checks
/// the consumer-facing fold on a real app, per backend).
#[test]
fn jacobi_loop_table_decomposes_the_whole_run() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let n_loops = prog.par_loops().len() as u32;
    for (name, cfg) in [
        ("sm-unopt", ExecConfig::sm_unopt(NPROCS)),
        ("sm-opt", ExecConfig::sm_opt(NPROCS)),
        ("mp", ExecConfig::mp(NPROCS)),
    ] {
        let r = execute(&prog, &cfg);
        let table = r.report.loop_table();
        let mut sum = fgdsm_tempest::NodeStats::default();
        let mut steps = 0;
        for row in &table {
            assert!(
                row.loop_id < n_loops || row.loop_id == fgdsm_tempest::NO_LOOP,
                "{name}: loop id {} out of range",
                row.loop_id
            );
            sum.accumulate(&row.total);
            steps += row.supersteps;
        }
        let mut whole = fgdsm_tempest::NodeStats::default();
        for n in &r.report.nodes {
            whole.accumulate(n);
        }
        assert_eq!(sum, whole, "{name}: loop table does not sum to the run");
        // One interval per superstep plus the post-run tail.
        let tail = r
            .report
            .intervals
            .iter()
            .filter(|iv| iv.step == fgdsm_tempest::NO_STEP)
            .count() as u64;
        assert_eq!(
            steps + tail,
            r.report.intervals.len() as u64,
            "{name}: loop table supersteps do not cover the intervals"
        );
    }
}

/// The co-residency (false-sharing) detector on jacobi.
///
/// At the Test geometry every node's columns are whole blocks
/// (96-word columns, 16-word blocks), so no multi-word block is ever
/// faulted by two nodes in one superstep — both backends must be clean;
/// the detector confirms the aligned distribution is hazard-free.
///
/// At one column per node each ghost column gains two remote readers
/// and the unoptimized run faults co-resident blocks every sweep. The
/// §4.2 contract covers the fully-aligned interior blocks — those become
/// clean — while the partial head/tail blocks (which `shmem_limits`
/// deliberately leaves to the default protocol) still fault on both
/// sides. The flagged-block sets make that exact split visible.
#[test]
fn jacobi_false_sharing_flags_unopt_coresidency_the_contract_removes() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    for cfg in [ExecConfig::sm_unopt(NPROCS), ExecConfig::sm_opt(NPROCS)] {
        let r = execute(&prog, &cfg);
        assert!(
            r.report.false_sharing.is_empty(),
            "block-aligned jacobi must be free of co-resident faults"
        );
    }

    let nprocs = 48; // one column per node: two remote readers per ghost column
    let un = execute(&prog, &ExecConfig::sm_unopt(nprocs));
    let op = execute(&prog, &ExecConfig::sm_opt(nprocs));
    assert!(
        !un.report.false_sharing.is_empty(),
        "unoptimized jacobi at one column per node must fault co-resident blocks"
    );
    for f in &un.report.false_sharing {
        assert!(f.nodes.len() >= 2, "flag with fewer than two nodes");
        assert_eq!(f.loop_id, 1, "jacobi co-residency comes from the sweep");
    }
    let un_blocks: BTreeSet<u32> = un.report.false_sharing.iter().map(|f| f.block).collect();
    let op_blocks: BTreeSet<u32> = op.report.false_sharing.iter().map(|f| f.block).collect();
    assert!(
        un_blocks.difference(&op_blocks).next().is_some(),
        "the contract must clean blocks the unoptimized run faults multi-node"
    );
    assert!(
        op_blocks.is_subset(&un_blocks),
        "the contract must not introduce new co-resident blocks"
    );
    assert!(
        op.report.false_sharing.len() < un.report.false_sharing.len(),
        "the contract must strictly reduce co-resident faulting"
    );
}

/// The Chrome-trace export is a well-formed JSON array of complete
/// spans (`X`) and instants (`i`), one track per node, and is emitted
/// alongside the structured trace by `execute_profiled`.
#[test]
fn jacobi_chrome_export_is_wellformed() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let (r, trace, chrome) = execute_profiled(&prog, &ExecConfig::sm_opt(NPROCS));
    assert!(r.report.traffic_balanced());
    assert!(!trace.is_empty());
    let c = chrome.trim();
    assert!(
        c.starts_with('[') && c.ends_with(']'),
        "chrome export is not a JSON array"
    );
    assert!(c.contains("\"ph\":\"X\""), "no complete spans");
    assert!(c.contains("\"ph\":\"i\""), "no instant events");
    for n in 0..NPROCS {
        assert!(
            c.contains(&format!("\"tid\":{n},")),
            "chrome export missing node {n}'s track"
        );
    }
    for field in ["\"pid\":", "\"ts\":", "\"dur\":", "\"name\":"] {
        assert!(c.contains(field), "chrome export missing {field}");
    }
    // Spans must carry the superstep/loop attribution for Perfetto's
    // args pane.
    assert!(c.contains("\"step\":"), "spans missing superstep args");
    assert!(c.contains("\"loop\":"), "spans missing loop args");
}

#[test]
fn jacobi_trace_export_carries_the_balanced_counters() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let (r, trace) = execute_traced(&prog, &ExecConfig::sm_opt(NPROCS));
    assert!(r.report.traffic_balanced());
    // The structured trace is the source the report aggregates fold
    // from; it must exist, name every node, and record message events.
    assert!(!trace.is_empty(), "empty trace export");
    for n in 0..NPROCS {
        assert!(
            trace.contains(&format!("\"node\":{n}")) || trace.contains(&format!("\"node\": {n}")),
            "trace export missing node {n}"
        );
    }
}
