//! Structural assertions tying each application's analyzed communication
//! to what the paper says about it (§6) — independent of any executor.

use fgdsm_apps::{cg, grav, jacobi, lu, pde, shallow, Scale};
use fgdsm_hpf::{analysis, analyze_program, Program};
use fgdsm_section::{Env, Var};

const NP: usize = 8;

fn loop_named<'p>(prog: &'p Program, name: &str) -> &'p fgdsm_hpf::ParLoop {
    prog.par_loops()
        .into_iter()
        .find(|l| l.name == name)
        .unwrap_or_else(|| panic!("no loop named {name}"))
}

#[test]
fn lu_broadcast_shrinks_with_k() {
    // "Since it is a triangular loop, the size of this column decreases
    // with successive iterations" (§6).
    let p = lu::Params { n: 128, runs: 1 };
    let prog = lu::build(&p);
    let update = loop_named(&prog, "update");
    let mut last = u64::MAX;
    for k in [0i64, 32, 64, 96, 120] {
        let env = Env::new().bind(Var("k"), k);
        let acc = analysis::analyze(&prog, update, &env, NP);
        let pivot_elems: u64 = acc
            .read_transfers
            .iter()
            .filter(|t| t.array == lu::A.0)
            .map(|t| t.section.count())
            .sum();
        assert!(
            pivot_elems < last,
            "k={k}: broadcast volume must shrink ({pivot_elems} !< {last})"
        );
        last = pivot_elems;
        // All transfers come from the single owner of column k.
        let owner = (k as usize) % NP;
        assert!(acc
            .read_transfers
            .iter()
            .all(|t| t.owner == owner && t.user != owner));
        // Every other node receives it (broadcast).
        let users: std::collections::BTreeSet<_> =
            acc.read_transfers.iter().map(|t| t.user).collect();
        assert_eq!(users.len(), NP - 1);
    }
}

#[test]
fn lu_scale_loop_runs_on_owner_only() {
    let p = lu::Params { n: 64, runs: 1 };
    let prog = lu::build(&p);
    let scale = loop_named(&prog, "scale");
    for k in [0i64, 5, 13] {
        let env = Env::new().bind(Var("k"), k);
        let acc = analysis::analyze(&prog, scale, &env, NP);
        let active: Vec<usize> = (0..NP)
            .filter(|&n| !acc.iters[n].iter().any(|r| r.is_empty()))
            .collect();
        assert_eq!(active, vec![(k as usize) % NP], "k={k}");
        // The owner's scale loop needs no communication.
        assert!(acc.read_transfers.is_empty());
    }
}

#[test]
fn pde_ghosts_are_whole_planes_of_pencils() {
    let p = pde::Params { g: 32, iters: 1 };
    let prog = pde::build(&p);
    let relax = loop_named(&prog, "relax");
    let acc = analysis::analyze(&prog, relax, &Env::new(), 4);
    // Interior nodes exchange one plane with each neighbor, in each
    // direction, for the u array only.
    for t in &acc.read_transfers {
        assert_eq!(t.array, pde::U.0, "only u is communicated");
        // Ghost sections are single planes (last dim is one index).
        assert_eq!(t.section.dims[2].count(), 1);
        // Owner and user are adjacent under BLOCK distribution.
        assert_eq!(
            t.owner.abs_diff(t.user),
            1,
            "plane ghosts travel between neighbors"
        );
    }
    assert!(!acc.read_transfers.is_empty());
    assert!(
        acc.write_transfers.is_empty(),
        "owner-computes: no remote writes"
    );
}

#[test]
fn shallow_has_wraparound_boundary_transfer() {
    // The periodic-boundary column copies move data between the first
    // and last nodes of the machine.
    let p = shallow::Params::at(Scale::Test);
    let prog = shallow::build(&p);
    let bc = loop_named(&prog, "bc1_cols");
    let acc = analysis::analyze(&prog, bc, &Env::new(), 4);
    assert!(
        acc.read_transfers
            .iter()
            .any(|t| t.owner == 3 && t.user == 0),
        "column 0's owner must read column n from the last node"
    );
}

#[test]
fn cg_reduction_loops_need_no_communication() {
    let p = cg::Params::at(Scale::Test);
    let prog = cg::build(&p);
    for name in ["pq", "rr"] {
        let l = loop_named(&prog, name);
        let acc = analysis::analyze(&prog, l, &Env::new(), NP);
        assert!(
            acc.read_transfers.is_empty(),
            "{name}: dot products read only owned data"
        );
        assert!(l.reduction.is_some());
    }
    // The matvec is the only stencil loop with ghost traffic.
    let mv = loop_named(&prog, "matvec");
    let acc = analysis::analyze(&prog, mv, &Env::new(), NP);
    assert!(!acc.read_transfers.is_empty());
}

#[test]
fn grav_smooth_ghosts_are_boundary_heavy() {
    // §6: "the edge effects are pronounced at 128-bytes blocksize" — at
    // grav's small extents, a large share of each ghost column is left
    // to the default protocol.
    let p = grav::Params::at(Scale::Bench);
    let prog = grav::build(&p);
    let reports = analyze_program(&prog, &Env::new(), NP, 16);
    let smooth = reports.iter().find(|r| r.loop_name == "smooth").unwrap();
    let controlled_words = smooth.ctl_blocks * 16;
    let boundary = smooth.boundary_words;
    let frac = boundary as f64 / (controlled_words + boundary) as f64;
    assert!(
        frac > 0.25,
        "grav's ghosts should be boundary-heavy, got {:.0}%",
        frac * 100.0
    );

    // Contrast: jacobi's tall block-aligned columns are almost all
    // controlled.
    let jp = jacobi::Params::at(Scale::Bench);
    let jprog = jacobi::build(&jp);
    let jreports = analyze_program(&jprog, &Env::new(), NP, 16);
    let sweep = jreports.iter().find(|r| r.loop_name == "sweep").unwrap();
    let jfrac = sweep.boundary_words as f64 / (sweep.ctl_blocks * 16 + sweep.boundary_words) as f64;
    assert!(
        jfrac < 0.10,
        "jacobi boundary fraction {:.0}%",
        jfrac * 100.0
    );
    assert!(jfrac < frac);
}

#[test]
fn static_loops_are_detected_for_compile_time_analysis() {
    // The stencil codes' loops have compile-time-constant access
    // structure; lu's depend on the pivot variable k.
    let jprog = jacobi::build(&jacobi::Params::at(Scale::Test));
    for l in jprog.par_loops() {
        assert!(l.is_static(), "jacobi loop `{}` should be static", l.name);
    }
    let lprog = lu::build(&lu::Params { n: 32, runs: 1 });
    let update = loop_named(&lprog, "update");
    assert!(!update.is_static());
    assert!(update.analysis_vars().contains(&Var("k")));
}
