//! Validation: every application, at test scale, must produce identical
//! results under the unoptimized, optimized (all levels) and
//! message-passing executors, and match its sequential reference.
//!
//! This is the safety net for compiler-orchestrated incoherence: a wrong
//! access set, a mis-subset block range or a missing flush shows up here
//! as a numeric mismatch, because data really moves between per-node
//! copies in the simulator.

use fgdsm_apps::{cg, grav, jacobi, lu, pde, shallow, Scale};
use fgdsm_hpf::{execute, ExecConfig, OptLevel, Program, RunResult};

const NPROCS: usize = 4;

fn all_configs() -> Vec<(&'static str, ExecConfig)> {
    vec![
        ("sm-unopt", ExecConfig::sm_unopt(NPROCS)),
        ("sm-unopt-1cpu", ExecConfig::sm_unopt(NPROCS).single_cpu()),
        (
            "sm-base",
            ExecConfig::sm_opt(NPROCS).with_opt(OptLevel::base()),
        ),
        (
            "sm-bulk",
            ExecConfig::sm_opt(NPROCS).with_opt(OptLevel::base_bulk()),
        ),
        (
            "sm-full",
            ExecConfig::sm_opt(NPROCS).with_opt(OptLevel::full()),
        ),
        (
            "sm-pre",
            ExecConfig::sm_opt(NPROCS).with_opt(OptLevel::full_pre()),
        ),
        ("mp", ExecConfig::mp(NPROCS)),
    ]
}

fn check_array(
    label: &str,
    r: &RunResult,
    prog: &Program,
    id: fgdsm_hpf::ArrayId,
    expect: &[f64],
    tol: f64,
) {
    let got = r.array(prog, id);
    assert_eq!(got.len(), expect.len(), "{label}: length mismatch");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        let denom = e.abs().max(1.0);
        assert!(
            (g - e).abs() / denom <= tol,
            "{label}: element {i}: got {g}, expected {e}"
        );
    }
}

#[test]
fn jacobi_all_backends_match_reference() {
    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    let (aref, sum) = jacobi::reference(&p);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(&format!("jacobi/{name}"), &r, &prog, jacobi::A, &aref, 0.0);
        let got = r.scalars["checksum"];
        assert!(
            (got - sum).abs() / sum.abs().max(1.0) < 1e-12,
            "jacobi/{name}: checksum {got} vs {sum}"
        );
    }
}

#[test]
fn pde_all_backends_match_reference() {
    let p = pde::Params::at(Scale::Test);
    let prog = pde::build(&p);
    let (uref, _norm) = pde::reference(&p);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(&format!("pde/{name}"), &r, &prog, pde::U, &uref, 0.0);
    }
}

#[test]
fn shallow_all_backends_match_reference() {
    let p = shallow::Params::at(Scale::Test);
    let prog = shallow::build(&p);
    let pref = shallow::reference(&p);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(
            &format!("shallow/{name}"),
            &r,
            &prog,
            shallow::P,
            &pref,
            0.0,
        );
    }
}

#[test]
fn lu_all_backends_match_reference() {
    let p = lu::Params::at(Scale::Test);
    let prog = lu::build(&p);
    let aref = lu::reference(&p);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(&format!("lu/{name}"), &r, &prog, lu::A, &aref, 0.0);
    }
}

#[test]
fn lu_factorization_actually_factors() {
    // L·U must reproduce the original matrix (validates the math itself,
    // not just agreement between implementations).
    let p = lu::Params { n: 24, runs: 1 };
    let a = lu::reference(&p);
    let n = p.n;
    let at = |i: usize, j: usize| i + j * n;
    for i in 0..n {
        for j in 0..n {
            let mut lu_ij = 0.0;
            for k in 0..=i.min(j) {
                let l = if k == i { 1.0 } else { a[at(i, k)] };
                let u = a[at(k, j)];
                if k <= j && k <= i {
                    lu_ij += if k == i { u } else { l * u };
                }
            }
            let orig = if i == j {
                n as f64
            } else {
                1.0 / ((i as i64 - j as i64).abs() as f64 + 1.0)
            };
            assert!(
                (lu_ij - orig).abs() < 1e-8 * (n as f64),
                "LU({i},{j}) = {lu_ij}, expected {orig}"
            );
        }
    }
}

#[test]
fn cg_all_backends_match_reference() {
    let p = cg::Params::at(Scale::Test);
    let prog = cg::build(&p);
    let (xref, rho_ref) = cg::reference(&p, NPROCS);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(&format!("cg/{name}"), &r, &prog, cg::X, &xref, 1e-12);
        let rho = r.scalars["rho"];
        assert!(
            (rho - rho_ref).abs() / rho_ref.abs().max(1e-30) < 1e-9,
            "cg/{name}: rho {rho} vs {rho_ref}"
        );
    }
}

#[test]
fn cg_converges() {
    // The residual must shrink: CG actually solves the system.
    let p = cg::Params {
        n: 40,
        m: 64,
        iters: 150,
    };
    let (_x, rho) = cg::reference(&p, NPROCS);
    let (_x0, rho0) = cg::reference(&cg::Params { iters: 0, ..p }, NPROCS);
    assert!(
        rho < rho0 * 1e-6,
        "residual should drop ≥6 orders: {rho0} → {rho}"
    );
}

#[test]
fn grav_all_backends_match_reference() {
    let p = grav::Params::at(Scale::Test);
    let prog = grav::build(&p);
    let (rref, mass_ref) = grav::reference(&p, NPROCS);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(&format!("grav/{name}"), &r, &prog, grav::RHO, &rref, 0.0);
        let mass = r.scalars["mass"];
        assert!(
            (mass - mass_ref).abs() / mass_ref.abs().max(1.0) < 1e-12,
            "grav/{name}: mass {mass} vs {mass_ref}"
        );
    }
}

#[test]
fn eight_node_runs_match_four_node_results() {
    // Results are independent of the processor count (jacobi & shallow
    // have no reductions, so this holds bitwise).
    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    let r4 = execute(&prog, &ExecConfig::sm_opt(4));
    let r8 = execute(&prog, &ExecConfig::sm_opt(8));
    assert_eq!(r4.array(&prog, jacobi::A), r8.array(&prog, jacobi::A));

    let sp = shallow::Params::at(Scale::Test);
    let sprog = shallow::build(&sp);
    let s4 = execute(&sprog, &ExecConfig::sm_opt(4));
    let s8 = execute(&sprog, &ExecConfig::sm_opt(8));
    assert_eq!(s4.array(&sprog, shallow::P), s8.array(&sprog, shallow::P));
}

#[test]
fn miss_reduction_shape_across_suite() {
    // Table 3's qualitative shape at test scale: every app's optimized
    // run removes misses; the stencil apps remove a large fraction.
    let progs: Vec<(&str, Program)> = vec![
        ("jacobi", jacobi::build(&jacobi::Params::at(Scale::Test))),
        ("pde", pde::build(&pde::Params::at(Scale::Test))),
        ("shallow", shallow::build(&shallow::Params::at(Scale::Test))),
        ("cg", cg::build(&cg::Params::at(Scale::Test))),
    ];
    for (name, prog) in progs {
        let unopt = execute(&prog, &ExecConfig::sm_unopt(NPROCS));
        let opt = execute(&prog, &ExecConfig::sm_opt(NPROCS));
        assert!(
            opt.report.avg_misses() < unopt.report.avg_misses(),
            "{name}: optimization should remove misses ({} vs {})",
            opt.report.avg_misses(),
            unopt.report.avg_misses()
        );
    }
}

#[test]
fn irreg_all_backends_match_reference() {
    use fgdsm_apps::irreg;
    let p = irreg::Params::at(Scale::Test);
    let prog = irreg::build(&p);
    let (xref, norm_ref) = irreg::reference(&p, NPROCS);
    for (name, cfg) in all_configs() {
        let r = execute(&prog, &cfg);
        check_array(&format!("irreg/{name}"), &r, &prog, irreg::X, &xref, 0.0);
        let norm = r.scalars["norm"];
        assert!(
            (norm - norm_ref).abs() / norm_ref.abs().max(1.0) < 1e-12,
            "irreg/{name}: norm {norm} vs {norm_ref}"
        );
    }
}

#[test]
fn irreg_shared_memory_beats_conservative_message_passing() {
    // The paper's §1/§7 motivation: indirect accesses force a
    // message-passing compiler into conservative whole-array broadcasts,
    // while shared memory faults in only the touched blocks.
    use fgdsm_apps::irreg;
    // A large array with a localized gather: the regime where the
    // conservative broadcast's volume dwarfs the faulted working set.
    let p = irreg::Params {
        n: 2048,
        iters: 3,
        span: 32,
    };
    let prog = irreg::build(&p);
    let sm = execute(&prog, &ExecConfig::sm_unopt(NPROCS));
    let opt = execute(&prog, &ExecConfig::sm_opt(NPROCS));
    let mp = execute(&prog, &ExecConfig::mp(NPROCS));
    assert!(
        sm.total_s() < mp.total_s(),
        "even unoptimized SM ({:.4}s) should beat conservative MP ({:.4}s)",
        sm.total_s(),
        mp.total_s()
    );
    assert!(opt.total_s() <= sm.total_s() * 1.02);
    // MP moved far more data than SM needed.
    assert!(mp.report.total_bytes() > 2 * sm.report.total_bytes());
    // (The affine part's single-element ghosts never fill a whole cache
    // block, so they correctly stay with the default protocol —
    // shmem_limits at work.)
    assert_eq!(opt.ctl.blocks_pushed, 0);
}

#[test]
fn irreg_gather_locality_controls_miss_volume() {
    use fgdsm_apps::irreg;
    let local = irreg::Params {
        n: 512,
        iters: 3,
        span: 8,
    };
    let scattered = irreg::Params {
        n: 512,
        iters: 3,
        span: 512,
    };
    let rl = execute(&irreg::build(&local), &ExecConfig::sm_unopt(NPROCS));
    let rs = execute(&irreg::build(&scattered), &ExecConfig::sm_unopt(NPROCS));
    assert!(
        rs.report.avg_misses() > rl.report.avg_misses(),
        "wider gather span must fault more blocks ({} vs {})",
        rs.report.avg_misses(),
        rl.report.avg_misses()
    );
}
