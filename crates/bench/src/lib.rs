//! Shared harness for regenerating the paper's tables and figures.
//!
//! Scale selection: set `FGDSM_FULL=1` for the paper's problem sizes
//! (Table 2 — minutes of runtime), `FGDSM_TEST=1` for tiny sizes; the
//! default is a reduced benchmark scale that preserves every qualitative
//! effect and finishes in well under a minute per harness.

use fgdsm_apps::{AppSpec, Scale};
use fgdsm_hpf::{execute, ExecConfig, OptLevel, RunResult};
use json::ToJson;
use std::io::Write;

/// The cluster size the paper evaluates.
pub const NPROCS: usize = 8;

/// Problem scale from the environment.
pub fn scale() -> Scale {
    if std::env::var("FGDSM_FULL").is_ok_and(|v| v == "1") {
        Scale::Paper
    } else if std::env::var("FGDSM_TEST").is_ok_and(|v| v == "1") {
        Scale::Test
    } else {
        Scale::Bench
    }
}

/// Human label for the active scale.
pub fn scale_label(s: Scale) -> &'static str {
    match s {
        Scale::Paper => "paper (Table 2) problem sizes",
        Scale::Bench => "reduced benchmark sizes (set FGDSM_FULL=1 for paper sizes)",
        Scale::Test => "tiny test sizes",
    }
}

/// All configurations of Figure 3 for one application.
pub struct AppRuns {
    pub name: &'static str,
    pub uni: RunResult,
    pub unopt_single: RunResult,
    pub unopt_dual: RunResult,
    pub opt_single: RunResult,
    pub opt_dual: RunResult,
    pub mp: RunResult,
}

impl AppRuns {
    /// Speedup of a run relative to the uniprocessor baseline.
    pub fn speedup(&self, r: &RunResult) -> f64 {
        self.uni.total_s() / r.total_s()
    }
}

/// Execute every Figure 3 configuration for one application.
pub fn run_app(spec: &AppSpec) -> AppRuns {
    let prog = &spec.program;
    AppRuns {
        name: spec.name,
        uni: execute(prog, &ExecConfig::sm_unopt(1)),
        unopt_single: execute(prog, &ExecConfig::sm_unopt(NPROCS).single_cpu()),
        unopt_dual: execute(prog, &ExecConfig::sm_unopt(NPROCS)),
        opt_single: execute(prog, &ExecConfig::sm_opt(NPROCS).single_cpu()),
        opt_dual: execute(prog, &ExecConfig::sm_opt(NPROCS)),
        mp: execute(prog, &ExecConfig::mp(NPROCS)),
    }
}

/// Execute one optimization-level variant (Figure 4 ablation), dual-cpu.
pub fn run_opt_level(spec: &AppSpec, opt: OptLevel) -> RunResult {
    execute(&spec.program, &ExecConfig::sm_opt(NPROCS).with_opt(opt))
}

/// Percent reduction from `base` to `opt`.
pub fn pct_reduction(base: f64, opt: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (1.0 - opt / base)
    }
}

/// Persist a harness's rows as JSON under `bench_results/` so
/// EXPERIMENTS.md can cite machine-generated numbers.
pub fn save_json<T: ToJson + ?Sized>(name: &str, rows: &T) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.json"))) {
        let _ = writeln!(f, "{}", rows.to_json());
    }
}

/// A minimal JSON emitter (avoids a serde dependency; only the subset our
/// row structs need: structs, sequences, strings, numbers, options).
///
/// Row structs are declared through [`json_row!`], which defines the
/// struct and derives a field-order-preserving [`ToJson`] impl.
pub mod json {
    use std::fmt::Write;

    /// Types that can render themselves as a compact JSON value.
    pub trait ToJson {
        fn write_json(&self, out: &mut String);

        fn to_json(&self) -> String {
            let mut s = String::new();
            self.write_json(&mut s);
            s
        }
    }

    /// Append `s` as a JSON string literal (with escaping) to `out`.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    macro_rules! int_to_json {
        ($($t:ty),+) => {$(
            impl ToJson for $t {
                fn write_json(&self, out: &mut String) {
                    write!(out, "{self}").unwrap();
                }
            }
        )+};
    }
    int_to_json!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl ToJson for f64 {
        fn write_json(&self, out: &mut String) {
            if self.is_finite() {
                write!(out, "{self}").unwrap();
            } else {
                out.push_str("null");
            }
        }
    }

    impl ToJson for f32 {
        fn write_json(&self, out: &mut String) {
            (*self as f64).write_json(out);
        }
    }

    impl ToJson for bool {
        fn write_json(&self, out: &mut String) {
            out.push_str(if *self { "true" } else { "false" });
        }
    }

    impl ToJson for str {
        fn write_json(&self, out: &mut String) {
            write_str(out, self);
        }
    }

    impl ToJson for String {
        fn write_json(&self, out: &mut String) {
            write_str(out, self);
        }
    }

    impl<T: ToJson + ?Sized> ToJson for &T {
        fn write_json(&self, out: &mut String) {
            (**self).write_json(out);
        }
    }

    impl<T: ToJson> ToJson for Option<T> {
        fn write_json(&self, out: &mut String) {
            match self {
                Some(v) => v.write_json(out),
                None => out.push_str("null"),
            }
        }
    }

    impl<T: ToJson> ToJson for [T] {
        fn write_json(&self, out: &mut String) {
            out.push('[');
            for (i, v) in self.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                v.write_json(out);
            }
            out.push(']');
        }
    }

    impl<T: ToJson> ToJson for Vec<T> {
        fn write_json(&self, out: &mut String) {
            self.as_slice().write_json(out);
        }
    }
}

/// Declare a benchmark row struct together with a [`json::ToJson`] impl
/// that emits its fields, in declaration order, as a JSON object.
#[macro_export]
macro_rules! json_row {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ty, )+
        }

        impl $crate::json::ToJson for $name {
            fn write_json(&self, out: &mut ::std::string::String) {
                out.push('{');
                let mut first = true;
                $(
                    if !::std::mem::take(&mut first) {
                        out.push(',');
                    }
                    $crate::json::write_str(out, stringify!($field));
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::json::ToJson;
    use super::*;

    json_row! {
        struct Row {
            name: &'static str,
            x: f64,
            n: u64,
            tags: Vec<&'static str>,
            opt: Option<i32>,
        }
    }

    #[test]
    fn json_round() {
        let r = Row {
            name: "a\"b",
            x: 1.5,
            n: 42,
            tags: vec!["p", "q"],
            opt: None,
        };
        assert_eq!(
            r.to_json(),
            r#"{"name":"a\"b","x":1.5,"n":42,"tags":["p","q"],"opt":null}"#
        );
    }

    #[test]
    fn json_rows_nest_in_sequences() {
        let rows = vec![Row {
            name: "x",
            x: f64::NAN,
            n: 0,
            tags: vec![],
            opt: Some(-3),
        }];
        assert_eq!(
            rows.to_json(),
            r#"[{"name":"x","x":null,"n":0,"tags":[],"opt":-3}]"#
        );
    }

    #[test]
    fn pct_reduction_basic() {
        assert_eq!(pct_reduction(10.0, 5.0), 50.0);
        assert_eq!(pct_reduction(0.0, 5.0), 0.0);
    }

    #[test]
    fn scale_defaults_to_bench() {
        // (Environment-dependent; in the test environment neither var set.)
        if std::env::var("FGDSM_FULL").is_err() && std::env::var("FGDSM_TEST").is_err() {
            assert_eq!(scale(), Scale::Bench);
        }
    }
}
