//! Shared harness for regenerating the paper's tables and figures.
//!
//! Scale selection: set `FGDSM_FULL=1` for the paper's problem sizes
//! (Table 2 — minutes of runtime), `FGDSM_TEST=1` for tiny sizes; the
//! default is a reduced benchmark scale that preserves every qualitative
//! effect and finishes in well under a minute per harness.

use fgdsm_apps::{AppSpec, Scale};
use fgdsm_hpf::{execute, ExecConfig, OptLevel, RunResult};
use serde::Serialize;
use std::io::Write;

/// The cluster size the paper evaluates.
pub const NPROCS: usize = 8;

/// Problem scale from the environment.
pub fn scale() -> Scale {
    if std::env::var("FGDSM_FULL").is_ok_and(|v| v == "1") {
        Scale::Paper
    } else if std::env::var("FGDSM_TEST").is_ok_and(|v| v == "1") {
        Scale::Test
    } else {
        Scale::Bench
    }
}

/// Human label for the active scale.
pub fn scale_label(s: Scale) -> &'static str {
    match s {
        Scale::Paper => "paper (Table 2) problem sizes",
        Scale::Bench => "reduced benchmark sizes (set FGDSM_FULL=1 for paper sizes)",
        Scale::Test => "tiny test sizes",
    }
}

/// All configurations of Figure 3 for one application.
pub struct AppRuns {
    pub name: &'static str,
    pub uni: RunResult,
    pub unopt_single: RunResult,
    pub unopt_dual: RunResult,
    pub opt_single: RunResult,
    pub opt_dual: RunResult,
    pub mp: RunResult,
}

impl AppRuns {
    /// Speedup of a run relative to the uniprocessor baseline.
    pub fn speedup(&self, r: &RunResult) -> f64 {
        self.uni.total_s() / r.total_s()
    }
}

/// Execute every Figure 3 configuration for one application.
pub fn run_app(spec: &AppSpec) -> AppRuns {
    let prog = &spec.program;
    AppRuns {
        name: spec.name,
        uni: execute(prog, &ExecConfig::sm_unopt(1)),
        unopt_single: execute(prog, &ExecConfig::sm_unopt(NPROCS).single_cpu()),
        unopt_dual: execute(prog, &ExecConfig::sm_unopt(NPROCS)),
        opt_single: execute(prog, &ExecConfig::sm_opt(NPROCS).single_cpu()),
        opt_dual: execute(prog, &ExecConfig::sm_opt(NPROCS)),
        mp: execute(prog, &ExecConfig::mp(NPROCS)),
    }
}

/// Execute one optimization-level variant (Figure 4 ablation), dual-cpu.
pub fn run_opt_level(spec: &AppSpec, opt: OptLevel) -> RunResult {
    execute(&spec.program, &ExecConfig::sm_opt(NPROCS).with_opt(opt))
}

/// Percent reduction from `base` to `opt`.
pub fn pct_reduction(base: f64, opt: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (1.0 - opt / base)
    }
}

/// Persist a harness's rows as JSON under `bench_results/` so
/// EXPERIMENTS.md can cite machine-generated numbers.
pub fn save_json<T: Serialize>(name: &str, rows: &T) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.json"))) {
        let _ = writeln!(f, "{}", to_json(rows));
    }
}

fn to_json<T: Serialize>(v: &T) -> String {
    // Tiny hand-rolled JSON via serde's derive + a minimal serializer is
    // overkill; use the debug-ish fallback through serde_json-free
    // formatting: serialize into a `String` with our own compact writer.
    json::to_string(v)
}

/// A minimal JSON serializer (avoids a serde_json dependency; only the
/// subset our row structs need: structs, sequences, strings, numbers).
pub mod json {
    use serde::ser::{self, Serialize};
    use std::fmt::Write;

    /// Serialize any `Serialize` value to a JSON string.
    pub fn to_string<T: Serialize>(v: &T) -> String {
        let mut s = Ser { out: String::new() };
        v.serialize(&mut s).expect("JSON serialization cannot fail");
        s.out
    }

    pub struct Ser {
        out: String,
    }

    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Error {}
    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! num {
        ($f:ident, $t:ty) => {
            fn $f(self, v: $t) -> Result<(), Error> {
                write!(self.out, "{v}").unwrap();
                Ok(())
            }
        };
    }

    impl<'a> ser::Serializer for &'a mut Ser {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Compound<'a>;
        type SerializeTuple = Compound<'a>;
        type SerializeTupleStruct = Compound<'a>;
        type SerializeTupleVariant = Compound<'a>;
        type SerializeMap = Compound<'a>;
        type SerializeStruct = Compound<'a>;
        type SerializeStructVariant = Compound<'a>;

        num!(serialize_i8, i8);
        num!(serialize_i16, i16);
        num!(serialize_i32, i32);
        num!(serialize_i64, i64);
        num!(serialize_u8, u8);
        num!(serialize_u16, u16);
        num!(serialize_u32, u32);
        num!(serialize_u64, u64);

        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.serialize_f64(v as f64)
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                write!(self.out, "{v}").unwrap();
            } else {
                self.out.push_str("null");
            }
            Ok(())
        }
        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.serialize_str(&v.to_string())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.out.push('"');
            for c in v.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        write!(self.out, "\\u{:04x}", c as u32).unwrap()
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
            Err(ser::Error::custom("bytes unsupported"))
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            self.serialize_str(variant)
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.out.push('{');
            self.serialize_str(variant)?;
            self.out.push(':');
            v.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Compound<'a>, Error> {
            self.out.push('[');
            Ok(Compound {
                ser: self,
                first: true,
                close: ']',
            })
        }
        fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(
            self,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Compound<'a>, Error> {
            self.out.push('{');
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Compound<'a>, Error> {
            self.out.push('{');
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }
        fn serialize_struct_variant(
            self,
            name: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a>, Error> {
            self.serialize_struct(name, len)
        }
    }

    pub struct Compound<'a> {
        ser: &'a mut Ser,
        first: bool,
        close: char,
    }

    impl Compound<'_> {
        fn comma(&mut self) {
            if self.first {
                self.first = false;
            } else {
                self.ser.out.push(',');
            }
        }
    }

    impl ser::SerializeSeq for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Error> {
            self.comma();
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }
    impl ser::SerializeTuple for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeTupleStruct for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeTupleVariant for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeMap for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, k: &T) -> Result<(), Error> {
            self.comma();
            k.serialize(&mut *self.ser)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Error> {
            self.ser.out.push(':');
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }
    impl ser::SerializeStruct for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.comma();
            ser::Serializer::serialize_str(&mut *self.ser, key)?;
            self.ser.out.push(':');
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }
    impl ser::SerializeStructVariant for Compound<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeStruct::end(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: &'static str,
        x: f64,
        n: u64,
        tags: Vec<&'static str>,
        opt: Option<i32>,
    }

    #[test]
    fn json_round() {
        let r = Row {
            name: "a\"b",
            x: 1.5,
            n: 42,
            tags: vec!["p", "q"],
            opt: None,
        };
        assert_eq!(
            json::to_string(&r),
            r#"{"name":"a\"b","x":1.5,"n":42,"tags":["p","q"],"opt":null}"#
        );
    }

    #[test]
    fn pct_reduction_basic() {
        assert_eq!(pct_reduction(10.0, 5.0), 50.0);
        assert_eq!(pct_reduction(0.0, 5.0), 0.0);
    }

    #[test]
    fn scale_defaults_to_bench() {
        // (Environment-dependent; in the test environment neither var set.)
        if std::env::var("FGDSM_FULL").is_err() && std::env::var("FGDSM_TEST").is_err() {
            assert_eq!(scale(), Scale::Bench);
        }
    }
}
