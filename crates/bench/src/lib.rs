//! Shared harness for regenerating the paper's tables and figures.
//!
//! Scale selection: set `FGDSM_FULL=1` for the paper's problem sizes
//! (Table 2 — minutes of runtime), `FGDSM_TEST=1` for tiny sizes; the
//! default is a reduced benchmark scale that preserves every qualitative
//! effect and finishes in well under a minute per harness.

use fgdsm_apps::{AppSpec, Scale};
use fgdsm_hpf::{execute, ExecConfig, OptLevel, RunResult};
use json::ToJson;
use std::io::Write;

/// The cluster size the paper evaluates.
pub const NPROCS: usize = 8;

/// Problem scale from the environment.
pub fn scale() -> Scale {
    if std::env::var("FGDSM_FULL").is_ok_and(|v| v == "1") {
        Scale::Paper
    } else if std::env::var("FGDSM_TEST").is_ok_and(|v| v == "1") {
        Scale::Test
    } else {
        Scale::Bench
    }
}

/// Human label for the active scale.
pub fn scale_label(s: Scale) -> &'static str {
    match s {
        Scale::Paper => "paper (Table 2) problem sizes",
        Scale::Bench => "reduced benchmark sizes (set FGDSM_FULL=1 for paper sizes)",
        Scale::Test => "tiny test sizes",
    }
}

/// Work-growth factors for the host-perf matrix, from `FGDSM_SCALE` as a
/// comma-separated list (e.g. `FGDSM_SCALE=1,4,8`). Defaults to `[1, 8]`:
/// the unscaled sizes plus the factor at which the threaded modes are
/// required to win.
pub fn scale_factors() -> Vec<usize> {
    parse_scale_factors(std::env::var("FGDSM_SCALE").ok().as_deref())
}

fn parse_scale_factors(raw: Option<&str>) -> Vec<usize> {
    let parsed: Vec<usize> = raw
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .map(|f| f.max(1))
                .collect()
        })
        .unwrap_or_default();
    if parsed.is_empty() {
        vec![1, 8]
    } else {
        parsed
    }
}

/// All configurations of Figure 3 for one application.
pub struct AppRuns {
    pub name: &'static str,
    pub uni: RunResult,
    pub unopt_single: RunResult,
    pub unopt_dual: RunResult,
    pub opt_single: RunResult,
    pub opt_dual: RunResult,
    pub mp: RunResult,
}

impl AppRuns {
    /// Speedup of a run relative to the uniprocessor baseline.
    pub fn speedup(&self, r: &RunResult) -> f64 {
        self.uni.total_s() / r.total_s()
    }
}

/// Execute every Figure 3 configuration for one application.
pub fn run_app(spec: &AppSpec) -> AppRuns {
    let prog = &spec.program;
    AppRuns {
        name: spec.name,
        uni: execute(prog, &ExecConfig::sm_unopt(1)),
        unopt_single: execute(prog, &ExecConfig::sm_unopt(NPROCS).single_cpu()),
        unopt_dual: execute(prog, &ExecConfig::sm_unopt(NPROCS)),
        opt_single: execute(prog, &ExecConfig::sm_opt(NPROCS).single_cpu()),
        opt_dual: execute(prog, &ExecConfig::sm_opt(NPROCS)),
        mp: execute(prog, &ExecConfig::mp(NPROCS)),
    }
}

/// Execute one optimization-level variant (Figure 4 ablation), dual-cpu.
pub fn run_opt_level(spec: &AppSpec, opt: OptLevel) -> RunResult {
    execute(&spec.program, &ExecConfig::sm_opt(NPROCS).with_opt(opt))
}

/// Percent reduction from `base` to `opt`.
pub fn pct_reduction(base: f64, opt: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (1.0 - opt / base)
    }
}

/// Persist a harness's rows as JSON under `bench_results/` so
/// EXPERIMENTS.md can cite machine-generated numbers.
pub fn save_json<T: ToJson + ?Sized>(name: &str, rows: &T) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.json"))) {
        let _ = writeln!(f, "{}", rows.to_json());
    }
}

/// A minimal JSON emitter (avoids a serde dependency; only the subset our
/// row structs need: structs, sequences, strings, numbers, options).
///
/// Row structs are declared through [`json_row!`], which defines the
/// struct and derives a field-order-preserving [`ToJson`] impl.
pub mod json {
    use std::fmt::Write;

    /// Types that can render themselves as a compact JSON value.
    pub trait ToJson {
        fn write_json(&self, out: &mut String);

        fn to_json(&self) -> String {
            let mut s = String::new();
            self.write_json(&mut s);
            s
        }
    }

    /// Append `s` as a JSON string literal (with escaping) to `out`.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    macro_rules! int_to_json {
        ($($t:ty),+) => {$(
            impl ToJson for $t {
                fn write_json(&self, out: &mut String) {
                    write!(out, "{self}").unwrap();
                }
            }
        )+};
    }
    int_to_json!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl ToJson for f64 {
        fn write_json(&self, out: &mut String) {
            if self.is_finite() {
                write!(out, "{self}").unwrap();
            } else {
                out.push_str("null");
            }
        }
    }

    impl ToJson for f32 {
        fn write_json(&self, out: &mut String) {
            (*self as f64).write_json(out);
        }
    }

    impl ToJson for bool {
        fn write_json(&self, out: &mut String) {
            out.push_str(if *self { "true" } else { "false" });
        }
    }

    impl ToJson for str {
        fn write_json(&self, out: &mut String) {
            write_str(out, self);
        }
    }

    impl ToJson for String {
        fn write_json(&self, out: &mut String) {
            write_str(out, self);
        }
    }

    impl<T: ToJson + ?Sized> ToJson for &T {
        fn write_json(&self, out: &mut String) {
            (**self).write_json(out);
        }
    }

    impl<T: ToJson> ToJson for Option<T> {
        fn write_json(&self, out: &mut String) {
            match self {
                Some(v) => v.write_json(out),
                None => out.push_str("null"),
            }
        }
    }

    impl<T: ToJson> ToJson for [T] {
        fn write_json(&self, out: &mut String) {
            out.push('[');
            for (i, v) in self.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                v.write_json(out);
            }
            out.push(']');
        }
    }

    impl<T: ToJson> ToJson for Vec<T> {
        fn write_json(&self, out: &mut String) {
            self.as_slice().write_json(out);
        }
    }

    /// A parsed JSON value — the minimal counterpart of [`ToJson`], so
    /// smoke tests can validate the harness artifacts without a serde
    /// dependency. Object keys keep their file order.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parse one JSON document. Errors carry the byte offset.
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut at = 0;
        let v = parse_value(b, &mut at)?;
        skip_ws(b, &mut at);
        if at != b.len() {
            return Err(format!("trailing bytes at offset {at}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], at: &mut usize) {
        while *at < b.len() && (b[*at] as char).is_ascii_whitespace() {
            *at += 1;
        }
    }

    fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*at) == Some(&c) {
            *at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {at}", c as char))
        }
    }

    fn parse_value(b: &[u8], at: &mut usize) -> Result<Value, String> {
        skip_ws(b, at);
        match b.get(*at) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *at += 1;
                let mut fields = Vec::new();
                skip_ws(b, at);
                if b.get(*at) == Some(&b'}') {
                    *at += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, at);
                    let key = parse_string(b, at)?;
                    skip_ws(b, at);
                    expect(b, at, b':')?;
                    fields.push((key, parse_value(b, at)?));
                    skip_ws(b, at);
                    match b.get(*at) {
                        Some(b',') => *at += 1,
                        Some(b'}') => {
                            *at += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {at}")),
                    }
                }
            }
            Some(b'[') => {
                *at += 1;
                let mut items = Vec::new();
                skip_ws(b, at);
                if b.get(*at) == Some(&b']') {
                    *at += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(b, at)?);
                    skip_ws(b, at);
                    match b.get(*at) {
                        Some(b',') => *at += 1,
                        Some(b']') => {
                            *at += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {at}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(b, at)?)),
            Some(b't') if b[*at..].starts_with(b"true") => {
                *at += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*at..].starts_with(b"false") => {
                *at += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*at..].starts_with(b"null") => {
                *at += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *at;
                while *at < b.len()
                    && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *at += 1;
                }
                std::str::from_utf8(&b[start..*at])
                    .ok()
                    .and_then(|t| t.parse::<f64>().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad literal at offset {start}"))
            }
        }
    }

    fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
        expect(b, at, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *at += 1;
                    match b.get(*at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*at + 1..*at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {at}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *at += 4;
                        }
                        _ => return Err(format!("bad escape at offset {at}")),
                    }
                    *at += 1;
                }
                Some(&c) => {
                    // Copy the full UTF-8 sequence starting at `c`.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(*at..*at + len)
                        .and_then(|ch| std::str::from_utf8(ch).ok())
                        .ok_or_else(|| format!("bad utf-8 at offset {at}"))?;
                    out.push_str(chunk);
                    *at += len;
                }
            }
        }
    }
}

/// The host-performance harness: how much *wall-clock* time the simulator
/// itself burns per application run, and what the threaded resolve/compute
/// phases buy. This is the one harness that measures host nanoseconds —
/// all other harnesses report deterministic virtual time. Results are
/// summarized as nearest-rank p10/median/p90 over `runs` repetitions.
pub mod host_perf {
    use fgdsm_apps::Scale;
    use fgdsm_hpf::{execute, ExecConfig, PoolMode};
    use fgdsm_testkit::{summarize_ns, Stopwatch};

    /// Resolve/compute parallelism modes measured per (app, backend):
    /// `serial` — both phases on the main thread; `rthreads` — serial
    /// compute with a threaded resolve apply stage (isolates the resolve-
    /// phase parallelism); `threads` — both phases threaded.
    pub const MODES: [&str; 3] = ["serial", "rthreads", "threads"];

    crate::json_row! {
        /// One (app, backend, scale-factor, parallelism-mode) host-time
        /// measurement.
        #[derive(Clone, Debug)]
        pub struct HostPerfRow {
            pub app: String,
            pub backend: String,
            pub par: String,
            /// `FGDSM_SCALE` work-growth factor of the measured problem.
            pub scale: u64,
            /// Worker threads in the threaded stages (1 in `serial`).
            pub threads: u64,
            /// Worker strategy of the threaded stages: `persistent`
            /// (reused pool), `scoped` (per-phase spawns), or `none`.
            pub pool: String,
            pub runs: u64,
            pub median_ns: u64,
            pub p10_ns: u64,
            pub p90_ns: u64,
            pub git_describe: String,
        }
    }

    /// `git describe --always --dirty` of the working tree, or `unknown`
    /// outside a repository.
    pub fn git_describe() -> String {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into())
    }

    /// Should a regeneration of the committed `bench_results` artifact be
    /// refused? True when the working tree is dirty (`git describe` ends
    /// in `-dirty`) and `FGDSM_BENCH_FORCE=1` is not set — committed
    /// artifacts must carry the provenance of a clean, reproducible tree.
    pub fn refuse_dirty_tree(git: &str) -> bool {
        git.ends_with("-dirty") && !std::env::var("FGDSM_BENCH_FORCE").is_ok_and(|v| v == "1")
    }

    /// Measure the full 6-app × 5-backend × scale-factor × 3-mode matrix:
    /// `runs` timed executions each, `workers` threads in the threaded
    /// modes, one problem stretch per entry of `factors` (the
    /// `FGDSM_SCALE` axis). The `tcp` backend rows time real socket
    /// round-trips to spawned `fgdsm-node` processes; they are skipped
    /// (with a notice) when the sandbox forbids sockets.
    pub fn measure(
        scale: Scale,
        factors: &[usize],
        runs: usize,
        workers: usize,
    ) -> Vec<HostPerfRow> {
        assert!(runs >= 1, "need at least one run");
        assert!(workers >= 2, "threaded modes need at least two workers");
        assert!(!factors.is_empty(), "need at least one scale factor");
        let git = git_describe();
        let mut backends = vec![
            ("sm_unopt", ExecConfig::sm_unopt(crate::NPROCS)),
            ("sm_opt", ExecConfig::sm_opt(crate::NPROCS)),
            ("mp", ExecConfig::mp(crate::NPROCS)),
            ("chan", ExecConfig::chan(crate::NPROCS)),
        ];
        if fgdsm_hpf::tcp_available() {
            backends.push(("tcp", ExecConfig::tcp(crate::NPROCS)));
        } else {
            eprintln!("notice: sandbox forbids sockets; host_perf measures no tcp rows");
        }
        let mut rows = Vec::new();
        for &factor in factors {
            for spec in fgdsm_apps::suite_scaled(scale, factor) {
                for (backend, cfg) in &backends {
                    for par in MODES {
                        let cfg = match par {
                            "serial" => cfg.clone().serial(),
                            "rthreads" => cfg.clone().serial().resolve_threads(workers),
                            _ => cfg.clone().threads(workers),
                        };
                        let pool = if par == "serial" {
                            "none"
                        } else if PoolMode::Auto.persistent() {
                            "persistent"
                        } else {
                            "scoped"
                        };
                        let mut samples = Vec::with_capacity(runs);
                        for _ in 0..runs {
                            let sw = Stopwatch::new();
                            std::hint::black_box(execute(&spec.program, &cfg));
                            // Clamp to 1ns so a coarse clock can't record
                            // an (impossible) zero-cost run.
                            samples.push(sw.elapsed_ns().max(1));
                        }
                        let (p10, median, p90) = summarize_ns(&samples);
                        rows.push(HostPerfRow {
                            app: spec.name.to_string(),
                            backend: backend.to_string(),
                            par: par.to_string(),
                            scale: factor as u64,
                            threads: if par == "serial" { 1 } else { workers as u64 },
                            pool: pool.to_string(),
                            runs: runs as u64,
                            median_ns: median,
                            p10_ns: p10,
                            p90_ns: p90,
                            git_describe: git.clone(),
                        });
                    }
                }
            }
        }
        rows
    }

    /// Render the serial-vs-parallel-resolve speedup table: one line per
    /// (app, backend, scale), median host time serial vs `rthreads` vs
    /// `threads`.
    pub fn speedup_table(rows: &[HostPerfRow]) -> String {
        use std::fmt::Write;
        let median = |app: &str, backend: &str, scale: u64, par: &str| {
            rows.iter()
                .find(|r| r.app == app && r.backend == backend && r.scale == scale && r.par == par)
                .map(|r| r.median_ns)
        };
        let mut out = String::new();
        writeln!(
            out,
            "{:<10} {:<9} {:>5} {:>12} {:>12} {:>12} {:>9} {:>9}",
            "app",
            "backend",
            "scale",
            "serial_ns",
            "rthreads_ns",
            "threads_ns",
            "rspeedup",
            "tspeedup"
        )
        .unwrap();
        let mut seen = Vec::new();
        for r in rows {
            let key = (r.app.clone(), r.backend.clone(), r.scale);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let (Some(s), Some(rt), Some(t)) = (
                median(&r.app, &r.backend, r.scale, "serial"),
                median(&r.app, &r.backend, r.scale, "rthreads"),
                median(&r.app, &r.backend, r.scale, "threads"),
            ) else {
                continue;
            };
            writeln!(
                out,
                "{:<10} {:<9} {:>5} {:>12} {:>12} {:>12} {:>8.2}x {:>8.2}x",
                r.app,
                r.backend,
                r.scale,
                s,
                rt,
                t,
                s as f64 / rt as f64,
                s as f64 / t as f64
            )
            .unwrap();
        }
        out
    }
}

/// Declare a benchmark row struct together with a [`json::ToJson`] impl
/// that emits its fields, in declaration order, as a JSON object.
#[macro_export]
macro_rules! json_row {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ty, )+
        }

        impl $crate::json::ToJson for $name {
            fn write_json(&self, out: &mut ::std::string::String) {
                out.push('{');
                let mut first = true;
                $(
                    if !::std::mem::take(&mut first) {
                        out.push(',');
                    }
                    $crate::json::write_str(out, stringify!($field));
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::json::ToJson;
    use super::*;

    json_row! {
        struct Row {
            name: &'static str,
            x: f64,
            n: u64,
            tags: Vec<&'static str>,
            opt: Option<i32>,
        }
    }

    #[test]
    fn json_round() {
        let r = Row {
            name: "a\"b",
            x: 1.5,
            n: 42,
            tags: vec!["p", "q"],
            opt: None,
        };
        assert_eq!(
            r.to_json(),
            r#"{"name":"a\"b","x":1.5,"n":42,"tags":["p","q"],"opt":null}"#
        );
    }

    #[test]
    fn json_rows_nest_in_sequences() {
        let rows = vec![Row {
            name: "x",
            x: f64::NAN,
            n: 0,
            tags: vec![],
            opt: Some(-3),
        }];
        assert_eq!(
            rows.to_json(),
            r#"[{"name":"x","x":null,"n":0,"tags":[],"opt":-3}]"#
        );
    }

    #[test]
    fn pct_reduction_basic() {
        assert_eq!(pct_reduction(10.0, 5.0), 50.0);
        assert_eq!(pct_reduction(0.0, 5.0), 0.0);
    }

    #[test]
    fn parse_scale_factors_handles_lists_and_junk() {
        assert_eq!(parse_scale_factors(None), vec![1, 8]);
        assert_eq!(parse_scale_factors(Some("")), vec![1, 8]);
        assert_eq!(parse_scale_factors(Some("junk")), vec![1, 8]);
        assert_eq!(parse_scale_factors(Some("4")), vec![4]);
        assert_eq!(parse_scale_factors(Some("1, 4 ,8")), vec![1, 4, 8]);
        assert_eq!(parse_scale_factors(Some("0,2")), vec![1, 2]);
    }

    #[test]
    fn scale_defaults_to_bench() {
        // (Environment-dependent; in the test environment neither var set.)
        if std::env::var("FGDSM_FULL").is_err() && std::env::var("FGDSM_TEST").is_err() {
            assert_eq!(scale(), Scale::Bench);
        }
    }
}
