//! Host-performance harness: wall-clock cost of the simulator itself and
//! the payoff of the parallel plan/apply resolve phase.
//!
//! Runs the whole 6-application suite under every backend and parallelism
//! mode (`serial`, `rthreads` = threaded resolve apply only, `threads` =
//! threaded resolve + compute), `FGDSM_BENCH_RUNS` times each (default 5),
//! and records nearest-rank p10/median/p90 **host** nanoseconds per row
//! into `bench_results/host_perf.json` (override the path with
//! `FGDSM_BENCH_OUT`). Host time is machine-dependent and never enters
//! the canonical reports — the determinism suite separately proves all
//! three modes produce byte-identical virtual-time results.
//!
//!     cargo run --release -p fgdsm-bench --bin host_perf
//!     FGDSM_BENCH_RUNS=9 FGDSM_PAR=8 cargo run --release -p fgdsm-bench --bin host_perf
//!     FGDSM_TEST=1 FGDSM_BENCH_RUNS=1 cargo run --release -p fgdsm-bench --bin host_perf

use fgdsm_bench::host_perf::{git_describe, measure, refuse_dirty_tree, speedup_table};
use fgdsm_bench::json::ToJson;
use fgdsm_bench::{save_json, scale, scale_factors, scale_label};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let runs = env_usize("FGDSM_BENCH_RUNS", 5).max(1);
    let workers = env_usize("FGDSM_PAR", 4).max(2);
    let factors = scale_factors();
    let git = git_describe();
    println!(
        "host perf — {} — scale factors {factors:?} — {runs} run(s) per row, {workers} workers \
         in threaded modes, {git}\n",
        scale_label(scale()),
    );
    let rows = measure(scale(), &factors, runs, workers);
    match std::env::var("FGDSM_BENCH_OUT") {
        Ok(path) => {
            std::fs::write(&path, format!("{}\n", rows.to_json()))
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote {}", path);
        }
        Err(_) if refuse_dirty_tree(&git) => {
            eprintln!(
                "NOT writing bench_results/host_perf.json: working tree is dirty ({git}). \
                 Commit first, or set FGDSM_BENCH_FORCE=1 to overwrite anyway."
            );
        }
        Err(_) => {
            save_json("host_perf", &rows);
            println!("wrote bench_results/host_perf.json");
        }
    }
    println!("\n{}", speedup_table(&rows));
}
