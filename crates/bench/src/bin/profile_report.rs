//! Loop-attributed communication profile: predicted vs. observed traffic
//! per IR loop, under the unoptimized and optimized shared-memory
//! backends.
//!
//! For each application the report decomposes the whole-run counters into
//! one row per parallel loop (per-superstep interval stats folded by
//! loop id), pairs the measured payload bytes with the §4.2 contract's
//! *planned* section volume, and marks loops where default-protocol
//! faults survived under the optimized backend — traffic the contract
//! was supposed to orchestrate but did not (`!` in the `byp` column).
//! False-sharing flags (multi-word blocks faulted by ≥2 nodes in one
//! superstep) are summarized per run, and every run's Chrome-trace
//! export is validated as well-formed before the table is trusted.
//!
//! `FGDSM_BACKEND=chan` appends the channel-backed distributed backend
//! to the per-app matrix; each chan run additionally self-asserts the
//! strict-wire accounting invariants (every heatmap byte attributed for
//! reduction-free apps, wire payload reconciling with the cluster's
//! `bytes_sent`). `FGDSM_BACKEND=tcp` appends the socket-backed
//! multi-process backend instead: the same invariants apply, and the
//! report closes with a predicted-vs-measured latency table putting the
//! Table-1 cost model's virtual communication time next to the host
//! nanoseconds the real socket round-trips actually took.
//!
//!     cargo run --release -p fgdsm-bench --bin profile_report
//!     cargo run --release -p fgdsm-bench --bin profile_report -- jacobi
//!     FGDSM_BACKEND=chan cargo run --release -p fgdsm-bench --bin profile_report -- jacobi
//!     FGDSM_BACKEND=tcp cargo run --release -p fgdsm-bench --bin profile_report -- jacobi
//!     FGDSM_CHROME=/tmp/j.json cargo run --release -p fgdsm-bench --bin profile_report -- jacobi

use fgdsm_apps::suite;
use fgdsm_bench::{json, json_row, save_json, scale};
use fgdsm_hpf::{execute_profiled, ExecConfig, RunResult};
use fgdsm_tempest::NO_LOOP;
use std::collections::BTreeMap;

const NPROCS: usize = 8;

json_row! {
    struct Row {
        app: &'static str,
        backend: &'static str,
        loop_name: String,
        supersteps: u64,
        compute_ns: u64,
        comm_ns: u64,
        misses: u64,
        bytes_sent: u64,
        planned_bytes: u64,
    }
}

json_row! {
    struct CalRow {
        app: &'static str,
        class: &'static str,
        frames: u64,
        payload_bytes: u64,
        predicted_roundtrip_ns: u64,
        measured_p50_ns: u64,
        measured_p90_ns: u64,
        measured_p99_ns: u64,
        measured_mean_ns: u64,
    }
}

/// Calibration: join the Table-1 cost model's predicted round-trip time
/// against the measured wall-clock `route.<class>` histograms of a
/// metered `tcp` run, one row per exercised `WireMsg` class. Predicted
/// is the simulated network's round-trip for this class's *mean* frame
/// payload; measured is loopback-socket host time — the table makes the
/// constant factor between the two worlds explicit per message class.
fn calibration_rows(app: &'static str, run: &RunResult) -> Vec<CalRow> {
    let reg = run
        .metrics()
        .unwrap_or_else(|| panic!("{app}/tcp: calibration needs a metered run"));
    let cost = fgdsm_tempest::CostModel::paper_dual_cpu();
    let mut rows = Vec::new();
    for kind in 0u8..=4 {
        let class = fgdsm_tempest::metrics::class_name(kind);
        let frames = reg.counter(&format!("coord.frames.{class}"));
        if frames == 0 {
            continue;
        }
        let payload = reg.counter(&format!("coord.payload_bytes.{class}"));
        let h = reg
            .hist(&format!("coord.route.{class}"))
            .unwrap_or_else(|| panic!("{app}/tcp: {frames} {class} frames but no route histogram"));
        assert_eq!(
            h.count(),
            frames,
            "{app}/tcp: route.{class} histogram must have one sample per frame"
        );
        rows.push(CalRow {
            app,
            class,
            frames,
            payload_bytes: payload,
            predicted_roundtrip_ns: cost.roundtrip_ns((payload / frames) as usize),
            measured_p50_ns: h.percentile(0.50),
            measured_p90_ns: h.percentile(0.90),
            measured_p99_ns: h.percentile(0.99),
            measured_mean_ns: h.sum() / h.count(),
        });
    }
    assert!(
        !rows.is_empty(),
        "{app}/tcp: no WireMsg class was exercised — calibration would be empty"
    );
    rows
}

/// Render the per-class calibration table.
fn calibration_table(rows: &[CalRow]) {
    println!("calibration — Table 1 predicted round-trip vs measured route histograms (tcp)");
    println!(
        "{:<10} {:<8} {:>8} {:>11} {:>13} {:>11} {:>11} {:>11} {:>11}",
        "app",
        "class",
        "frames",
        "payload_B",
        "predicted_ns",
        "p50_ns",
        "p90_ns",
        "p99_ns",
        "mean_ns"
    );
    for r in rows {
        println!(
            "{:<10} {:<8} {:>8} {:>11} {:>13} {:>11} {:>11} {:>11} {:>11}",
            r.app,
            r.class,
            r.frames,
            r.payload_bytes,
            r.predicted_roundtrip_ns,
            r.measured_p50_ns,
            r.measured_p90_ns,
            r.measured_p99_ns,
            r.measured_mean_ns,
        );
    }
}

/// Assert the Chrome-trace export is a well-formed JSON array of
/// complete-span (`X`), instant (`i`), and metadata (`M`) events, each
/// carrying the `pid`/`tid`/`ts` fields Perfetto requires. (`M` only
/// appears in merged traces — the per-process `process_name` labels.)
fn validate_chrome(app: &str, backend: &str, chrome: &str) {
    let v = json::parse(chrome)
        .unwrap_or_else(|e| panic!("{app}/{backend}: chrome trace is not JSON: {e}"));
    let events = v
        .as_arr()
        .unwrap_or_else(|| panic!("{app}/{backend}: chrome trace is not an array"));
    assert!(
        !events.is_empty(),
        "{app}/{backend}: chrome trace has no events"
    );
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or_else(|| panic!("{app}/{backend}: event without ph: {ev:?}"));
        assert!(
            ph == "X" || ph == "i" || ph == "M",
            "{app}/{backend}: unexpected phase {ph:?}"
        );
        for key in ["pid", "tid"] {
            assert!(
                ev.get(key).and_then(|v| v.as_u64()).is_some(),
                "{app}/{backend}: event missing {key}: {ev:?}"
            );
        }
        assert!(
            ev.get("ts").and_then(|v| v.as_f64()).is_some(),
            "{app}/{backend}: event missing ts: {ev:?}"
        );
        assert!(
            ev.get("name").and_then(|n| n.as_str()).is_some(),
            "{app}/{backend}: event missing name"
        );
        if ph == "X" {
            assert!(
                ev.get("dur").and_then(|d| d.as_f64()).is_some(),
                "{app}/{backend}: span missing dur"
            );
        }
    }
}

/// Extra backends requested through `FGDSM_BACKEND` (`chan` or `tcp`),
/// appended after the standard two. Requesting `tcp` in a sandbox that
/// forbids sockets is a loud error — the CI gate probes availability
/// before setting the variable.
fn extra_backends() -> Vec<(&'static str, ExecConfig)> {
    match std::env::var("FGDSM_BACKEND").ok().as_deref() {
        None | Some("") => Vec::new(),
        Some("chan") => vec![("chan", ExecConfig::chan(NPROCS))],
        Some("tcp") => {
            assert!(
                fgdsm_hpf::tcp_available(),
                "FGDSM_BACKEND=tcp but the sandbox forbids sockets \
                 (probe with `fgdsm-node --probe tcp` first)"
            );
            // Metered: the tcp run feeds the calibration table and the
            // merged Perfetto trace. Telemetry is a side channel, so the
            // profile rows are byte-identical to an unmetered run.
            vec![("tcp", ExecConfig::tcp(NPROCS).metered())]
        }
        Some(other) => {
            panic!("FGDSM_BACKEND: unknown backend `{other}` (expected `chan` or `tcp`)")
        }
    }
}

/// Strict-wire accounting invariants of a `chan` or `tcp` run: the run
/// actually moved envelopes, the payload words they carried never exceed
/// the protocol's own byte accounting (`bytes_sent` adds fixed
/// per-message headers on top, reduction traffic is counted but not
/// enveloped), and for reduction-free apps every heatmap byte is
/// block-attributed — reductions are the only traffic with no home
/// block, so nothing else may leak into `unattributed_bytes`. A `tcp`
/// run must additionally accrue *measured* route time: real socket
/// round-trips cost host nanoseconds the in-process backends never see.
fn check_wire_invariants(app: &str, backend: &str, run: &RunResult) {
    let mut whole = fgdsm_tempest::NodeStats::default();
    for n in &run.report.nodes {
        whole.accumulate(n);
    }
    assert!(
        run.wire_frames > 0 || whole.bytes_sent == 0,
        "{app}/{backend}: traffic flowed ({} bytes) but no envelopes were routed",
        whole.bytes_sent
    );
    assert!(
        run.wire_payload_bytes > 0 || whole.bytes_sent == 0,
        "{app}/{backend}: envelopes routed but carried no payload"
    );
    assert!(
        run.wire_payload_bytes <= whole.bytes_sent,
        "{app}/{backend}: wire payload {} exceeds cluster bytes_sent {}",
        run.wire_payload_bytes,
        whole.bytes_sent
    );
    if whole.reductions == 0 {
        for (n, hm) in run.report.heatmaps.iter().enumerate() {
            assert_eq!(
                hm.unattributed_bytes, 0,
                "{app}/{backend}: node {n} sent unattributed bytes in a reduction-free app"
            );
        }
    }
    if backend == "tcp" {
        assert!(
            run.wire_route_ns() > 0 || run.wire_frames == 0,
            "{app}/tcp: socket round-trips must accrue measured route time"
        );
    }
    println!(
        "    wire: {} frames, {} payload bytes ({} cluster bytes_sent)",
        run.wire_frames, run.wire_payload_bytes, whole.bytes_sent
    );
}

/// One app's predicted-vs-measured latency comparison: the Table-1 cost
/// model's virtual communication time against the host time the real
/// socket round-trips took.
struct LatencyRow {
    app: &'static str,
    predicted_comm_ns: u64,
    measured_route_ns: u64,
    frames: u64,
    payload_bytes: u64,
}

/// Render the closing predicted-vs-measured table for the `tcp` runs.
/// The two columns answer different questions — the predicted side is
/// the simulated network of Table 1 (fixed per-message latency plus
/// bandwidth), the measured side is loopback-socket host time — so the
/// table validates *liveness and proportionality* of the cost model
/// (more frames cost more on both clocks), not equality.
fn latency_table(rows: &[LatencyRow]) {
    println!("predicted vs measured wire latency — Table 1 cost model vs host sockets");
    println!(
        "{:<10} {:>15} {:>15} {:>8} {:>11} {:>13} {:>13}",
        "app", "predicted_ns", "measured_ns", "frames", "payload_B", "pred_ns/frm", "meas_ns/frm"
    );
    for r in rows {
        let per = |ns: u64| if r.frames == 0 { 0 } else { ns / r.frames };
        println!(
            "{:<10} {:>15} {:>15} {:>8} {:>11} {:>13} {:>13}",
            r.app,
            r.predicted_comm_ns,
            r.measured_route_ns,
            r.frames,
            r.payload_bytes,
            per(r.predicted_comm_ns),
            per(r.measured_route_ns),
        );
    }
}

fn report_run(
    app: &'static str,
    backend: &'static str,
    loop_names: &[&'static str],
    run: &RunResult,
    chrome: &str,
    rows: &mut Vec<Row>,
) {
    validate_chrome(app, backend, chrome);

    // Planned (contract-orchestrated) bytes per loop, from the backend's
    // plan-time records. Empty for sm_unopt: everything is "unplanned".
    let mut planned: BTreeMap<u32, u64> = BTreeMap::new();
    for x in &run.planned {
        *planned.entry(x.loop_id).or_default() += x.bytes;
    }

    let handler_in_comm = run.report.handler_in_comm;
    let table = run.report.loop_table();
    println!("  {backend} (virtual {:.3}s)", run.total_s());
    println!(
        "    {:<10} {:>5} {:>12} {:>12} {:>8} {:>12} {:>12}  byp",
        "loop", "steps", "compute_ns", "comm_ns", "misses", "bytes", "planned_B"
    );
    let mut sum = fgdsm_tempest::NodeStats::default();
    for row in &table {
        let name = if row.loop_id == NO_LOOP {
            "(outside)"
        } else {
            loop_names
                .get(row.loop_id as usize)
                .copied()
                .unwrap_or("<?>")
        };
        let planned_bytes = planned.get(&row.loop_id).copied().unwrap_or(0);
        // Under the optimized backend, misses inside a planned loop mean
        // traffic bypassed the contract onto the default-protocol path.
        let bypassed = backend == "sm-opt" && row.loop_id != NO_LOOP && row.total.misses() > 0;
        println!(
            "    {:<10} {:>5} {:>12} {:>12} {:>8} {:>12} {:>12}  {}",
            name,
            row.supersteps,
            row.total.compute_ns,
            row.total.comm_ns(handler_in_comm),
            row.total.misses(),
            row.total.bytes_sent,
            planned_bytes,
            if bypassed { "!" } else { "" }
        );
        rows.push(Row {
            app,
            backend,
            loop_name: name.to_string(),
            supersteps: row.supersteps,
            compute_ns: row.total.compute_ns,
            comm_ns: row.total.comm_ns(handler_in_comm),
            misses: row.total.misses(),
            bytes_sent: row.total.bytes_sent,
            planned_bytes,
        });
        sum.accumulate(&row.total);
    }

    // The table is a decomposition, not a sample: summing every row must
    // reproduce the whole-run cluster counters field by field.
    let mut whole = fgdsm_tempest::NodeStats::default();
    for n in &run.report.nodes {
        whole.accumulate(n);
    }
    assert_eq!(
        sum, whole,
        "{app}/{backend}: per-loop table does not sum to the whole run"
    );

    let fs = &run.report.false_sharing;
    if fs.is_empty() {
        println!("    false sharing: none");
    } else {
        let blocks: std::collections::BTreeSet<u32> = fs.iter().map(|f| f.block).collect();
        println!(
            "    false sharing: {} flags over {} blocks (first: step {} loop {} block {} nodes {:?})",
            fs.len(),
            blocks.len(),
            fs[0].step,
            fs[0].loop_id,
            fs[0].block,
            fs[0].nodes
        );
    }
}

/// Co-residency demo: jacobi's Test geometry is block-aligned at 8
/// procs (6 columns × 96 words = 36 blocks per node), so the detector
/// finds nothing — the hazard `shmem_limits` exists for is absent by
/// construction. Re-running at one column per node makes every ghost
/// column a two-reader section: the unoptimized run faults co-resident
/// blocks all over, while the §4.2 contract covers the fully-aligned
/// interior blocks, leaving only the partial head/tail blocks (which
/// `shmem_limits` correctly refuses to orchestrate) on the default path.
fn false_sharing_demo() {
    use fgdsm_apps::{jacobi, Scale};
    use std::collections::BTreeSet;
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let nprocs = 48; // one column per node: two remote readers per ghost column
    let un = fgdsm_hpf::execute(&prog, &ExecConfig::sm_unopt(nprocs));
    let op = fgdsm_hpf::execute(&prog, &ExecConfig::sm_opt(nprocs));
    let un_blocks: BTreeSet<u32> = un.report.false_sharing.iter().map(|f| f.block).collect();
    let op_blocks: BTreeSet<u32> = op.report.false_sharing.iter().map(|f| f.block).collect();
    let covered: Vec<u32> = un_blocks.difference(&op_blocks).copied().collect();
    println!("co-residency demo — jacobi at {nprocs} procs (one column per node)");
    println!(
        "  sm-unopt: {} flags over {} blocks | sm-opt: {} flags over {} blocks",
        un.report.false_sharing.len(),
        un_blocks.len(),
        op.report.false_sharing.len(),
        op_blocks.len(),
    );
    println!(
        "  {} co-resident blocks in the unoptimized run are clean under the contract",
        covered.len()
    );
    assert!(
        !un.report.false_sharing.is_empty(),
        "unoptimized jacobi at one column per node must exhibit co-resident faults"
    );
    assert!(
        !covered.is_empty(),
        "the contract must clean at least one block the unoptimized run faults multi-node"
    );
    assert!(
        op.report.false_sharing.len() < un.report.false_sharing.len(),
        "the contract must strictly reduce co-resident faulting"
    );
}

fn main() {
    let filter = std::env::args().nth(1);
    println!(
        "profile report — {} — {} procs\n",
        fgdsm_bench::scale_label(scale()),
        NPROCS
    );
    let mut rows = Vec::new();
    let mut latency = Vec::new();
    let mut calibration = Vec::new();
    let mut ran = 0;
    for spec in suite(scale()) {
        if let Some(f) = &filter {
            if spec.name != f.as_str() {
                continue;
            }
        }
        ran += 1;
        println!("{}", spec.name);
        let loop_names: Vec<&'static str> =
            spec.program.par_loops().iter().map(|l| l.name).collect();
        let mut backends = vec![
            ("sm-unopt", ExecConfig::sm_unopt(NPROCS)),
            ("sm-opt", ExecConfig::sm_opt(NPROCS)),
        ];
        backends.extend(extra_backends());
        for (backend, cfg) in backends {
            let (run, _trace, chrome) = execute_profiled(&spec.program, &cfg);
            report_run(spec.name, backend, &loop_names, &run, &chrome, &mut rows);
            if backend == "chan" || backend == "tcp" {
                check_wire_invariants(spec.name, backend, &run);
            }
            if backend == "tcp" {
                let mut whole = fgdsm_tempest::NodeStats::default();
                for n in &run.report.nodes {
                    whole.accumulate(n);
                }
                latency.push(LatencyRow {
                    app: spec.name,
                    predicted_comm_ns: whole.comm_ns(run.report.handler_in_comm),
                    measured_route_ns: run.wire_route_ns(),
                    frames: run.wire_frames,
                    payload_bytes: run.wire_payload_bytes,
                });
                // Metered run: the telemetry side channel must conserve
                // the wire's payload accounting on both sides of the
                // socket, and the merged Perfetto trace (virtual-clock
                // coordinator tracks + wall-clock worker pid tracks)
                // must validate like any other chrome export.
                run.check_metrics_conservation()
                    .unwrap_or_else(|e| panic!("{}/tcp: {e}", spec.name));
                let merged = run.merged_chrome(&chrome);
                validate_chrome(spec.name, "tcp-merged", &merged);
                if let Ok(path) = std::env::var("FGDSM_MERGED_CHROME") {
                    if !path.is_empty() {
                        if let Err(e) = std::fs::write(&path, &merged) {
                            eprintln!("FGDSM_MERGED_CHROME: cannot write {path}: {e}");
                        }
                    }
                }
                calibration.extend(calibration_rows(spec.name, &run));
            }
        }
        println!();
    }
    assert!(ran > 0, "no app matched {filter:?}");
    if !latency.is_empty() {
        latency_table(&latency);
        println!();
    }
    if !calibration.is_empty() {
        calibration_table(&calibration);
        println!();
        // FGDSM_CALIB_OUT redirects to a scratch path, like
        // FGDSM_PROFILE_OUT below.
        match std::env::var("FGDSM_CALIB_OUT") {
            Ok(path) => {
                use fgdsm_bench::json::ToJson;
                if let Err(e) = std::fs::write(&path, format!("{}\n", calibration.to_json())) {
                    eprintln!("FGDSM_CALIB_OUT: cannot write {path}: {e}");
                }
            }
            Err(_) => save_json("calibration", &calibration),
        }
    }
    if filter.is_none() || filter.as_deref() == Some("jacobi") {
        false_sharing_demo();
    }
    // FGDSM_PROFILE_OUT redirects the rows to a scratch path (the ci
    // smoke runs at test scale and must not clobber the committed
    // bench-scale artifact).
    match std::env::var("FGDSM_PROFILE_OUT") {
        Ok(path) => {
            use fgdsm_bench::json::ToJson;
            if let Err(e) = std::fs::write(&path, format!("{}\n", rows.to_json())) {
                eprintln!("FGDSM_PROFILE_OUT: cannot write {path}: {e}");
            }
        }
        Err(_) => save_json("profile", &rows),
    }
}
