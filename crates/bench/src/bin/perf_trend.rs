//! Perf-trend regression tracker: append-only, git-stamped wall-clock
//! summaries so every PR's perf trajectory is *recorded* instead of
//! overwritten.
//!
//! Each invocation runs the application suite once per app on the best
//! available distributed backend (`tcp` when the sandbox allows sockets,
//! `chan` otherwise) with telemetry on, and appends one JSONL row per
//! app to `bench_results/trend.jsonl` (override the path with
//! `FGDSM_TREND_OUT`): the git stamp, median host wall time over
//! `FGDSM_TREND_RUNS` runs (default 3), the on-wire payload volume, and
//! the p99 of the coordinator's wall-clock route histograms. It then
//! renders a PR-over-PR delta table comparing the newest git stamp
//! against the previous one in the file.
//!
//! `perf_trend check` validates every line of the file against the row
//! schema without running anything — the CI step that keeps the
//! append-only log parseable forever.
//!
//!     cargo run --release -p fgdsm-bench --bin perf_trend
//!     cargo run --release -p fgdsm-bench --bin perf_trend -- check
//!     FGDSM_TEST=1 FGDSM_TREND_OUT=/tmp/t.jsonl cargo run -p fgdsm-bench --bin perf_trend

use fgdsm_bench::host_perf::{git_describe, refuse_dirty_tree};
use fgdsm_bench::json::{self, ToJson, Value};
use fgdsm_bench::{json_row, scale, scale_label};
use fgdsm_hpf::{execute, ExecConfig};
use fgdsm_tempest::Histogram;
use fgdsm_testkit::Stopwatch;

const NPROCS: usize = 8;

json_row! {
    /// One app's perf-trend sample. Appended, never rewritten: the file
    /// accumulates one group of rows per PR.
    #[derive(Clone)]
    struct TrendRow {
        git: String,
        app: String,
        backend: String,
        scale: u64,
        wall_ns: u64,
        wire_payload_bytes: u64,
        route_p99_ns: u64,
    }
}

/// The schema every `trend.jsonl` line must satisfy, name → expected
/// type tag (`s` string / `u` unsigned integer).
const SCHEMA: &[(&str, char)] = &[
    ("git", 's'),
    ("app", 's'),
    ("backend", 's'),
    ("scale", 'u'),
    ("wall_ns", 'u'),
    ("wire_payload_bytes", 'u'),
    ("route_p99_ns", 'u'),
];

fn trend_path() -> String {
    std::env::var("FGDSM_TREND_OUT").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("bench_results/trend.jsonl")
            .to_string_lossy()
            .into_owned()
    })
}

/// Validate one JSONL line against [`SCHEMA`]; returns the parsed object.
fn check_line(lineno: usize, line: &str) -> Value {
    let v =
        json::parse(line).unwrap_or_else(|e| panic!("trend.jsonl line {lineno}: not JSON: {e}"));
    for &(key, ty) in SCHEMA {
        let field = v
            .get(key)
            .unwrap_or_else(|| panic!("trend.jsonl line {lineno}: missing key `{key}`"));
        let ok = match ty {
            's' => field.as_str().is_some(),
            _ => field.as_u64().is_some(),
        };
        assert!(
            ok,
            "trend.jsonl line {lineno}: key `{key}` has the wrong type: {field:?}"
        );
    }
    v
}

/// Parse (and schema-check) every row currently in the file.
fn read_rows(path: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| check_line(i + 1, l))
        .collect()
}

/// Git stamps in order of first appearance (the file is append-only, so
/// this is PR order).
fn stamps(rows: &[Value]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in rows {
        let g = r.get("git").and_then(Value::as_str).unwrap().to_string();
        if out.last() != Some(&g) && !out.contains(&g) {
            out.push(g);
        }
    }
    out
}

fn pct_delta(old: u64, new: u64) -> String {
    if old == 0 {
        return "n/a".into();
    }
    format!("{:+.1}%", (new as f64 - old as f64) / old as f64 * 100.0)
}

/// PR-over-PR delta table: the newest stamp's rows against the previous
/// stamp's, matched by (app, backend).
fn delta_table(rows: &[Value]) {
    let stamps = stamps(rows);
    let Some(new) = stamps.last() else {
        println!("trend: no rows yet");
        return;
    };
    let prev = stamps.len().checked_sub(2).map(|i| &stamps[i]);
    println!(
        "perf trend — {} vs {}",
        new,
        prev.map(String::as_str).unwrap_or("(first sample)")
    );
    println!(
        "{:<10} {:<8} {:>14} {:>9} {:>13} {:>9} {:>13} {:>9}",
        "app", "backend", "wall_ns", "Δwall", "payload_B", "Δpayload", "route_p99_ns", "Δp99"
    );
    let field = |r: &Value, k: &str| r.get(k).and_then(Value::as_u64).unwrap();
    let text = |r: &Value, k: &str| r.get(k).and_then(Value::as_str).unwrap().to_string();
    for r in rows.iter().filter(|r| &text(r, "git") == new) {
        let old = prev.and_then(|p| {
            rows.iter().find(|o| {
                &text(o, "git") == p
                    && text(o, "app") == text(r, "app")
                    && text(o, "backend") == text(r, "backend")
            })
        });
        let delta = |k: &str| {
            old.map(|o| pct_delta(field(o, k), field(r, k)))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<10} {:<8} {:>14} {:>9} {:>13} {:>9} {:>13} {:>9}",
            text(r, "app"),
            text(r, "backend"),
            field(r, "wall_ns"),
            delta("wall_ns"),
            field(r, "wire_payload_bytes"),
            delta("wire_payload_bytes"),
            field(r, "route_p99_ns"),
            delta("route_p99_ns"),
        );
    }
}

/// Measure one trend row per app: median wall time of `runs` metered
/// executions, plus the last run's wire payload and merged route-p99.
fn measure(git: &str, runs: usize) -> Vec<TrendRow> {
    let (backend, cfg) = if fgdsm_hpf::tcp_available() {
        ("tcp", ExecConfig::tcp(NPROCS).metered())
    } else {
        eprintln!("notice: sandbox forbids sockets; perf_trend samples the chan backend");
        ("chan", ExecConfig::chan(NPROCS).metered())
    };
    let factor = std::env::var("FGDSM_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for spec in fgdsm_apps::suite(scale()) {
        let mut samples = Vec::with_capacity(runs);
        let mut last = None;
        for _ in 0..runs {
            let sw = Stopwatch::new();
            let run = execute(&spec.program, &cfg);
            samples.push(sw.elapsed_ns().max(1));
            last = Some(run);
        }
        let run = last.unwrap();
        samples.sort_unstable();
        let reg = run.metrics().expect("metered run has a registry");
        // One merged coordinator route histogram across all message
        // classes — the p99 a PR must not silently regress.
        let mut route = Histogram::new();
        for (k, m) in reg.iter() {
            if k.starts_with("coord.route.") {
                if let Some(h) = m.as_hist() {
                    route.merge(h);
                }
            }
        }
        rows.push(TrendRow {
            git: git.to_string(),
            app: spec.name.to_string(),
            backend: backend.to_string(),
            scale: factor,
            wall_ns: samples[samples.len() / 2],
            wire_payload_bytes: run.wire_payload_bytes,
            route_p99_ns: route.percentile(0.99),
        });
    }
    rows
}

fn main() {
    let path = trend_path();
    if std::env::args().nth(1).as_deref() == Some("check") {
        let rows = read_rows(&path);
        assert!(!rows.is_empty(), "perf_trend check: {path} has no rows");
        println!("trend.jsonl: {} rows, schema OK", rows.len());
        delta_table(&rows);
        return;
    }
    let runs = std::env::var("FGDSM_TREND_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize)
        .max(1);
    let git = git_describe();
    if std::env::var("FGDSM_TREND_OUT").is_err() && refuse_dirty_tree(&git) {
        eprintln!(
            "NOT appending to bench_results/trend.jsonl: working tree is dirty ({git}). \
             Commit first, set FGDSM_TREND_OUT, or set FGDSM_BENCH_FORCE=1."
        );
        std::process::exit(1);
    }
    println!(
        "perf trend — {} — {} run(s) per app, {git}\n",
        scale_label(scale()),
        runs
    );
    let rows = measure(&git, runs);
    let mut out = String::new();
    for r in &rows {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    // Append-only: never rewrite history. Every line (old and new) is
    // schema-checked on readback below.
    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()))
        .unwrap_or_else(|e| panic!("appending {path}: {e}"));
    println!("appended {} rows to {path}\n", rows.len());
    delta_table(&read_rows(&path));
}
