//! One-line-per-application summary of absolute virtual times under every
//! backend — the quickest way to see the whole evaluation at once.
//!
//!     cargo run --release -p fgdsm-bench --bin suite_report
//!     FGDSM_FULL=1 cargo run --release -p fgdsm-bench --bin suite_report

use fgdsm_apps::suite;
use fgdsm_bench::scale;
use fgdsm_hpf::{execute, ExecConfig};

fn main() {
    println!("suite report — {}\n", fgdsm_bench::scale_label(scale()));
    for spec in suite(scale()) {
        let uni = execute(&spec.program, &ExecConfig::sm_unopt(1));
        let un = execute(&spec.program, &ExecConfig::sm_unopt(8));
        let op = execute(&spec.program, &ExecConfig::sm_opt(8));
        let mp = execute(&spec.program, &ExecConfig::mp(8));
        println!(
            "{:8} uni {:8.3}s | unopt tot {:7.3} comm {:7.3} | opt tot {:7.3} comm {:7.3} | mp tot {:7.3} comm {:7.3}",
            spec.name,
            uni.total_s(),
            un.total_s(),
            un.report.comm_s(),
            op.total_s(),
            op.report.comm_s(),
            mp.total_s(),
            mp.report.comm_s(),
        );
    }
}
