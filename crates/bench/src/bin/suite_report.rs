//! One-line-per-application summary of absolute virtual times under every
//! backend — the quickest way to see the whole evaluation at once.
//!
//! Besides the virtual (simulated) times, each row records the host
//! wall-clock spent executing the run, so `bench_results/suite.json`
//! accumulates a real-speedup trajectory for the threaded compute phase
//! (`FGDSM_PAR`, see README). Wall-clock is host-dependent and is *not*
//! part of the canonical report JSON.
//!
//! When the sandbox allows sockets, each row also carries the
//! socket-backed `tcp` backend's virtual times (`tcp_s`/`tcp_comm_s`
//! must equal `chan`'s — both are `sm_opt[full]` behind a wire seam)
//! and a sixth wall-clock entry; otherwise those fields are `null` and
//! the wall vector keeps its five in-process entries.
//!
//!     cargo run --release -p fgdsm-bench --bin suite_report
//!     FGDSM_FULL=1 cargo run --release -p fgdsm-bench --bin suite_report
//!     FGDSM_PAR=8 cargo run --release -p fgdsm-bench --bin suite_report

use fgdsm_apps::{scale_factor, suite_scaled};
use fgdsm_bench::{json_row, save_json, scale};
use fgdsm_hpf::{execute, tcp_available, ExecConfig, ParallelMode, RunResult};

json_row! {
    struct Row {
        app: &'static str,
        /// `FGDSM_SCALE` work-growth factor of the measured problem.
        scale: u64,
        uni_s: f64,
        unopt_s: f64,
        unopt_comm_s: f64,
        opt_s: f64,
        opt_comm_s: f64,
        mp_s: f64,
        mp_comm_s: f64,
        chan_s: f64,
        chan_comm_s: f64,
        /// Socket-backed multi-process backend; `null` when the sandbox
        /// forbids sockets.
        tcp_s: Option<f64>,
        tcp_comm_s: Option<f64>,
        /// Host wall-clock for the runs above, in order (a sixth entry
        /// when the `tcp` run participates).
        wall_ns: Vec<u64>,
    }
}

fn main() {
    let factor = scale_factor();
    let with_tcp = tcp_available();
    if !with_tcp {
        eprintln!("notice: sandbox forbids sockets; suite report carries no tcp columns");
    }
    println!(
        "suite report — {} — scale factor {factor} — {} compute worker(s)\n",
        fgdsm_bench::scale_label(scale()),
        ParallelMode::Auto.workers(),
    );
    let mut rows = Vec::new();
    for spec in suite_scaled(scale(), factor) {
        let uni = execute(&spec.program, &ExecConfig::sm_unopt(1));
        let un = execute(&spec.program, &ExecConfig::sm_unopt(8));
        let op = execute(&spec.program, &ExecConfig::sm_opt(8));
        let mp = execute(&spec.program, &ExecConfig::mp(8));
        let chan = execute(&spec.program, &ExecConfig::chan(8));
        let tcp = with_tcp.then(|| execute(&spec.program, &ExecConfig::tcp(8)));
        let wall = |r: &RunResult| r.report.wall_ns;
        let mut walls = vec![wall(&uni), wall(&un), wall(&op), wall(&mp), wall(&chan)];
        if let Some(t) = &tcp {
            walls.push(wall(t));
        }
        let wall_ms: f64 = walls.iter().map(|&ns| ns as f64 / 1e6).sum();
        let tcp_col = match &tcp {
            Some(t) => format!(
                " | tcp tot {:7.3} comm {:7.3}",
                t.total_s(),
                t.report.comm_s()
            ),
            None => String::new(),
        };
        println!(
            "{:8} uni {:8.3}s | unopt tot {:7.3} comm {:7.3} | opt tot {:7.3} comm {:7.3} | mp tot {:7.3} comm {:7.3} | chan tot {:7.3} comm {:7.3}{tcp_col} | wall {:8.1}ms",
            spec.name,
            uni.total_s(),
            un.total_s(),
            un.report.comm_s(),
            op.total_s(),
            op.report.comm_s(),
            mp.total_s(),
            mp.report.comm_s(),
            chan.total_s(),
            chan.report.comm_s(),
            wall_ms,
        );
        rows.push(Row {
            app: spec.name,
            scale: factor as u64,
            uni_s: uni.total_s(),
            unopt_s: un.total_s(),
            unopt_comm_s: un.report.comm_s(),
            opt_s: op.total_s(),
            opt_comm_s: op.report.comm_s(),
            mp_s: mp.total_s(),
            mp_comm_s: mp.report.comm_s(),
            chan_s: chan.total_s(),
            chan_comm_s: chan.report.comm_s(),
            tcp_s: tcp.as_ref().map(RunResult::total_s),
            tcp_comm_s: tcp.as_ref().map(|t| t.report.comm_s()),
            wall_ns: walls,
        });
    }
    save_json("suite", &rows);
}
