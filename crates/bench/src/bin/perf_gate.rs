//! CI performance gate for the host-speed engine.
//!
//! Two subcommands:
//!
//! * `smoke` — run two representative applications (jacobi, pde) at the
//!   reduced benchmark scale stretched by factor 8 (`FGDSM_SCALE=8`
//!   territory, where threading must win) under the optimized backend,
//!   three timed runs each serial and threaded, and **fail** (exit 1) if
//!   the threaded median exceeds 1.2× the serial median for any app —
//!   i.e. threading must at least roughly break even on problems of this
//!   size, pool and all.
//! * `trend <prev.json>` — compare the threads/serial median ratios of
//!   the working tree's `bench_results/host_perf.json` against a previous
//!   committed artifact (extracted in ci.sh with `git show`). A missing,
//!   unparseable, or old-format previous file is tolerated (the gate
//!   prints a note and passes); a current ratio more than 1.25× worse
//!   than the previous one fails.
//! * `chan` — the wire-seam overhead gate: same two applications and
//!   factor-8 stretch as `smoke`, serial runs only, and **fail** if the
//!   `chan` backend's median exceeds 2.0× `sm_opt`'s — encoding every
//!   transfer, carrying it across channel workers and decoding it back
//!   must stay within small-constant-factor territory of the zero-copy
//!   fast path.
//!
//!     cargo run --release -p fgdsm-bench --bin perf_gate -- smoke
//!     cargo run --release -p fgdsm-bench --bin perf_gate -- trend target/host_perf_prev.json
//!     cargo run --release -p fgdsm-bench --bin perf_gate -- chan

use fgdsm_apps::{suite_scaled, Scale};
use fgdsm_bench::json::{self, Value};
use fgdsm_bench::NPROCS;
use fgdsm_hpf::{execute, ExecConfig};
use fgdsm_testkit::{summarize_ns, Stopwatch};

/// Threaded may be at most this multiple of serial in the smoke gate.
const SMOKE_RATIO: f64 = 1.2;
/// A (app, backend, scale) ratio may regress by at most this factor
/// between two committed artifacts.
const TREND_RATIO: f64 = 1.25;
/// The chan backend may cost at most this multiple of sm_opt serial.
const CHAN_RATIO: f64 = 2.0;
const SMOKE_FACTOR: usize = 8;
const SMOKE_RUNS: usize = 3;
const SMOKE_APPS: [&str; 2] = ["jacobi", "pde"];

fn median_ns(prog: &fgdsm_hpf::Program, cfg: &ExecConfig, runs: usize) -> u64 {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let sw = Stopwatch::new();
        std::hint::black_box(execute(prog, cfg));
        samples.push(sw.elapsed_ns().max(1));
    }
    summarize_ns(&samples).1
}

fn smoke() -> bool {
    let workers = std::env::var("FGDSM_PAR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize)
        .max(2);
    let mut ok = true;
    for spec in suite_scaled(Scale::Bench, SMOKE_FACTOR)
        .into_iter()
        .filter(|s| SMOKE_APPS.contains(&s.name))
    {
        let serial = median_ns(
            &spec.program,
            &ExecConfig::sm_opt(NPROCS).serial(),
            SMOKE_RUNS,
        );
        let threaded = median_ns(
            &spec.program,
            &ExecConfig::sm_opt(NPROCS).threads(workers).pooled(),
            SMOKE_RUNS,
        );
        let ratio = threaded as f64 / serial as f64;
        let verdict = if ratio <= SMOKE_RATIO { "ok" } else { "FAIL" };
        println!(
            "perf-smoke {:<8} scale {SMOKE_FACTOR}: serial {serial} ns, threaded({workers}) \
             {threaded} ns, ratio {ratio:.2} (limit {SMOKE_RATIO}) — {verdict}",
            spec.name
        );
        ok &= ratio <= SMOKE_RATIO;
    }
    ok
}

fn chan_smoke() -> bool {
    let mut ok = true;
    for spec in suite_scaled(Scale::Bench, SMOKE_FACTOR)
        .into_iter()
        .filter(|s| SMOKE_APPS.contains(&s.name))
    {
        let sm_opt = median_ns(
            &spec.program,
            &ExecConfig::sm_opt(NPROCS).serial(),
            SMOKE_RUNS,
        );
        let chan = median_ns(
            &spec.program,
            &ExecConfig::chan(NPROCS).serial(),
            SMOKE_RUNS,
        );
        let ratio = chan as f64 / sm_opt as f64;
        let verdict = if ratio <= CHAN_RATIO { "ok" } else { "FAIL" };
        println!(
            "perf-chan {:<8} scale {SMOKE_FACTOR}: sm_opt {sm_opt} ns, chan {chan} ns, \
             ratio {ratio:.2} (limit {CHAN_RATIO}) — {verdict}",
            spec.name
        );
        ok &= ratio <= CHAN_RATIO;
    }
    ok
}

/// `(app, backend, scale) → threads/serial median ratio` of one artifact.
/// `None` when the document misses the fields the ratio needs (an
/// old-format artifact).
fn ratios(doc: &Value) -> Option<Vec<((String, String, u64), f64)>> {
    let rows = doc.as_arr()?;
    let mut medians = Vec::new();
    for r in rows {
        let key = (
            r.get("app")?.as_str()?.to_string(),
            r.get("backend")?.as_str()?.to_string(),
            r.get("scale")?.as_u64()?,
        );
        let par = r.get("par")?.as_str()?.to_string();
        medians.push((key, par, r.get("median_ns")?.as_u64()?));
    }
    let lookup = |key: &(String, String, u64), par: &str| {
        medians
            .iter()
            .find(|(k, p, _)| k == key && p == par)
            .map(|&(_, _, m)| m)
    };
    let mut out = Vec::new();
    for (key, par, _) in &medians {
        if par != "serial" || out.iter().any(|(k, _)| k == key) {
            continue;
        }
        if let (Some(s), Some(t)) = (lookup(key, "serial"), lookup(key, "threads")) {
            out.push((key.clone(), t as f64 / s as f64));
        }
    }
    Some(out)
}

fn trend(prev_path: &str) -> bool {
    let current_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results/host_perf.json");
    let Ok(current_text) = std::fs::read_to_string(&current_path) else {
        println!(
            "perf-trend: no current {} — skipping",
            current_path.display()
        );
        return true;
    };
    let Ok(prev_text) = std::fs::read_to_string(prev_path) else {
        println!("perf-trend: no previous artifact at {prev_path} — skipping");
        return true;
    };
    let current = match json::parse(&current_text).ok().as_ref().and_then(ratios) {
        Some(r) => r,
        None => {
            println!("perf-trend: current artifact lacks scale rows — skipping");
            return true;
        }
    };
    let prev = match json::parse(&prev_text).ok().as_ref().and_then(ratios) {
        Some(r) if !r.is_empty() => r,
        _ => {
            println!("perf-trend: previous artifact is old-format or empty — skipping");
            return true;
        }
    };
    let mut ok = true;
    for (key, cur_ratio) in &current {
        let Some((_, prev_ratio)) = prev.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let (app, backend, scale) = key;
        if *cur_ratio > prev_ratio * TREND_RATIO {
            println!(
                "perf-trend FAIL {app}/{backend}/scale{scale}: threads/serial ratio \
                 {cur_ratio:.2} vs previous {prev_ratio:.2} (limit ×{TREND_RATIO})"
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "perf-trend ok: {} (app, backend, scale) ratios within ×{TREND_RATIO} of previous",
            current.len()
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ok = match args.get(1).map(String::as_str) {
        None | Some("smoke") => smoke(),
        Some("chan") => chan_smoke(),
        Some("trend") => {
            let prev = args.get(2).map(String::as_str).unwrap_or("");
            if prev.is_empty() {
                eprintln!("usage: perf_gate trend <prev.json>");
                false
            } else {
                trend(prev)
            }
        }
        Some(other) => {
            eprintln!(
                "unknown subcommand `{other}` (expected `smoke`, `chan`, or `trend <prev.json>`)"
            );
            false
        }
    };
    if !ok {
        std::process::exit(1);
    }
}
