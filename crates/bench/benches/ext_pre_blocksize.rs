//! Extension experiments beyond the paper's figures:
//!
//! 1. **PRE redundant-communication elimination** (§4.3 / future work):
//!    the paper predicts "shallow, pde, and cg show opportunities for
//!    redundant communication elimination, which should increase
//!    performance even further". We run `OptLevel::full_pre()` and report
//!    transfers skipped and time deltas.
//! 2. **Block-size sensitivity** (§3/§6): the edge-effect argument — at
//!    larger blocks, small-extent apps (grav) lose more of their miss
//!    reduction to boundary blocks.

use fgdsm_apps::{grav, jacobi, suite};
use fgdsm_bench::{json_row, pct_reduction, scale, scale_label, NPROCS};
use fgdsm_hpf::{execute, ExecConfig, OptLevel};
use fgdsm_tempest::CostModel;

json_row! {
    struct PreRow {
        app: &'static str,
        transfers_performed: u64,
        transfers_skipped: u64,
        full_time_s: f64,
        pre_time_s: f64,
    }
}

json_row! {
    struct BlockRow {
        app: &'static str,
        block_bytes: usize,
        miss_reduction_pct: f64,
    }
}

fn main() {
    let s = scale();
    println!(
        "Extension 1: PRE redundant-communication elimination — {}\n",
        scale_label(s)
    );
    println!(
        "{:<10}{:>12}{:>10}{:>14}{:>14}",
        "app", "performed", "skipped", "full (s)", "full+pre (s)"
    );
    let mut pre_rows = Vec::new();
    for spec in suite(s) {
        let full = execute(&spec.program, &ExecConfig::sm_opt(NPROCS));
        let pre = execute(
            &spec.program,
            &ExecConfig::sm_opt(NPROCS).with_opt(OptLevel::full_pre()),
        );
        let row = PreRow {
            app: spec.name,
            transfers_performed: pre.pre_performed,
            transfers_skipped: pre.pre_skipped,
            full_time_s: full.total_s(),
            pre_time_s: pre.total_s(),
        };
        println!(
            "{:<10}{:>12}{:>10}{:>14.3}{:>14.3}",
            row.app,
            row.transfers_performed,
            row.transfers_skipped,
            row.full_time_s,
            row.pre_time_s
        );
        assert!(
            row.pre_time_s <= row.full_time_s * 1.001,
            "{}: PRE must never slow execution",
            row.app
        );
        pre_rows.push(row);
    }
    fgdsm_bench::save_json("ext_pre", &pre_rows);

    println!("\nExtension 2: block-size sensitivity of the miss reduction\n");
    println!("{:<10}{:>8}{:>20}", "app", "block", "miss reduction");
    let mut block_rows = Vec::new();
    for (name, prog) in [
        ("jacobi", jacobi::build(&jacobi::Params::at(s))),
        ("grav", grav::build(&grav::Params::at(s))),
    ] {
        let mut per_app = Vec::new();
        for block_bytes in [32usize, 64, 128] {
            let cost = CostModel {
                block_bytes,
                ..CostModel::paper_dual_cpu()
            };
            let mut un = ExecConfig::sm_unopt(NPROCS);
            un.cost = cost.clone();
            let mut op = ExecConfig::sm_opt(NPROCS);
            op.cost = cost;
            let u = execute(&prog, &un);
            let o = execute(&prog, &op);
            let red = pct_reduction(u.report.avg_misses(), o.report.avg_misses());
            println!("{:<10}{:>7}B{:>19.1}%", name, block_bytes, red);
            per_app.push(red);
            block_rows.push(BlockRow {
                app: name,
                block_bytes,
                miss_reduction_pct: red,
            });
        }
        if name == "grav" {
            // The edge-effect argument: grav keeps less of its reduction
            // at 128-byte blocks than at 32-byte blocks.
            assert!(
                per_app[2] < per_app[0],
                "grav: miss reduction should degrade with block size ({per_app:?})"
            );
        }
    }
    // And grav is hurt far more than jacobi at 128 bytes (Table 3: 38.2%
    // vs 96.7%).
    let at128 = |app: &str| {
        block_rows
            .iter()
            .find(|r| r.app == app && r.block_bytes == 128)
            .unwrap()
            .miss_reduction_pct
    };
    assert!(
        at128("jacobi") > at128("grav"),
        "jacobi must retain more of its miss reduction than grav at 128B"
    );
    println!("\nshape checks passed: PRE never hurts; grav's reduction degrades with block size");
    fgdsm_bench::save_json("ext_blocksize", &block_rows);
}
