//! Criterion micro-benchmarks of the simulator and compiler primitives —
//! the host-side cost of the library itself (not virtual time): protocol
//! transactions, compiler-directed calls, section algebra, and per-loop
//! access analysis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fgdsm_apps::{jacobi, Scale};
use fgdsm_hpf::{analysis, execute, ExecConfig};
use fgdsm_protocol::Dsm;
use fgdsm_section::{block_subset, Env, Range, Section};
use fgdsm_tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};
use std::hint::black_box;

fn fresh_dsm(nprocs: usize) -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(1 << 16);
    Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.bench_function("read_miss_clean", |b| {
        b.iter_batched_ref(
            || fresh_dsm(4),
            |d| d.read_access(1, black_box(0)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("write_upgrade", |b| {
        b.iter_batched_ref(
            || {
                let mut d = fresh_dsm(4);
                d.read_access(1, 0);
                d
            },
            |d| d.write_access_excl(2, black_box(0)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mk_writable_64_blocks", |b| {
        b.iter_batched_ref(
            || fresh_dsm(4),
            |d| d.mk_writable(1, 0, black_box(64)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("send_range_bulk_64_blocks", |b| {
        b.iter_batched_ref(
            || {
                let mut d = fresh_dsm(4);
                d.mk_writable(1, 0, 64);
                d.implicit_writable(2, 0, 64, false);
                d
            },
            |d| {
                d.send_range(1, &[2], 0, black_box(64), true);
                d.ready_to_recv(2);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sections(c: &mut Criterion) {
    let mut g = c.benchmark_group("section");
    let a = Section::new(vec![Range::new(0, 2047), Range::new(0, 255)]);
    let b2 = Section::new(vec![Range::new(0, 2047), Range::new(256, 511)]);
    g.bench_function("subtract_2d", |b| {
        b.iter(|| black_box(&a).subtract(black_box(&b2)))
    });
    g.bench_function("intersect_2d", |b| {
        b.iter(|| black_box(&a).intersect(black_box(&b2)))
    });
    g.bench_function("block_subset", |b| {
        b.iter(|| block_subset(black_box(1234), black_box(987_654), 128))
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    let loops = prog.par_loops();
    let sweep = loops.iter().find(|l| l.name == "sweep").unwrap();
    let env = Env::new();
    c.bench_function("analysis/jacobi_sweep_8_nodes", |b| {
        b.iter(|| analysis::analyze(black_box(&prog), black_box(sweep), &env, 8))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("jacobi_test_scale_opt", |b| {
        b.iter(|| execute(black_box(&prog), &ExecConfig::sm_opt(8)))
    });
    g.bench_function("jacobi_test_scale_unopt", |b| {
        b.iter(|| execute(black_box(&prog), &ExecConfig::sm_unopt(8)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_protocol,
    bench_sections,
    bench_analysis,
    bench_end_to_end
);
criterion_main!(benches);
