//! Micro-benchmarks of the simulator and compiler primitives — the
//! host-side cost of the library itself (not virtual time): protocol
//! transactions, compiler-directed calls, section algebra, and per-loop
//! access analysis.
//!
//! Self-contained `Instant`-based timing (no criterion dependency, which
//! would break the offline build): each benchmark reports mean ns/op over
//! a fixed iteration budget after a warmup pass.

use fgdsm_apps::{jacobi, Scale};
use fgdsm_hpf::{analysis, execute, ExecConfig};
use fgdsm_protocol::Dsm;
use fgdsm_section::{block_subset, Env, Range, Section};
use fgdsm_tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};
use std::hint::black_box;
use std::time::Instant;

fn fresh_dsm(nprocs: usize) -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(1 << 16);
    Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
}

/// Time `op` over fresh state from `setup`, printing mean ns/op.
/// Setup cost is excluded by timing each op individually.
fn bench_batched<S, O: FnMut(&mut S)>(
    name: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut op: O,
) {
    // Warmup.
    for _ in 0..iters.div_ceil(10).max(1) {
        let mut s = setup();
        op(&mut s);
    }
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        let mut s = setup();
        let t0 = Instant::now();
        op(&mut s);
        total += t0.elapsed();
    }
    println!(
        "{:<44}{:>14.0} ns/op",
        name,
        total.as_nanos() as f64 / iters as f64
    );
}

/// Time `op` with no per-iteration state, printing mean ns/op.
fn bench_loop<R>(name: &str, iters: u32, mut op: impl FnMut() -> R) {
    for _ in 0..iters.div_ceil(10).max(1) {
        black_box(op());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    println!(
        "{:<44}{:>14.0} ns/op",
        name,
        t0.elapsed().as_nanos() as f64 / iters as f64
    );
}

fn bench_protocol() {
    bench_batched(
        "protocol/read_miss_clean",
        200,
        || fresh_dsm(4),
        |d| d.read_access(1, black_box(0)),
    );
    bench_batched(
        "protocol/write_upgrade",
        200,
        || {
            let mut d = fresh_dsm(4);
            d.read_access(1, 0);
            d
        },
        |d| d.write_access_excl(2, black_box(0)),
    );
    bench_batched(
        "protocol/mk_writable_64_blocks",
        200,
        || fresh_dsm(4),
        |d| d.mk_writable(1, 0, black_box(64)),
    );
    bench_batched(
        "protocol/send_range_bulk_64_blocks",
        200,
        || {
            let mut d = fresh_dsm(4);
            d.mk_writable(1, 0, 64);
            d.implicit_writable(2, 0, 64, false);
            d
        },
        |d| {
            d.send_range(1, &[2], 0, black_box(64), true);
            d.ready_to_recv(2);
        },
    );
}

fn bench_sections() {
    let a = Section::new(vec![Range::new(0, 2047), Range::new(0, 255)]);
    let b2 = Section::new(vec![Range::new(0, 2047), Range::new(256, 511)]);
    bench_loop("section/subtract_2d", 10_000, || {
        black_box(&a).subtract(black_box(&b2))
    });
    bench_loop("section/intersect_2d", 10_000, || {
        black_box(&a).intersect(black_box(&b2))
    });
    bench_loop("section/block_subset", 10_000, || {
        block_subset(black_box(1234), black_box(987_654), 128)
    });
}

fn bench_analysis() {
    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    let loops = prog.par_loops();
    let sweep = loops.iter().find(|l| l.name == "sweep").unwrap();
    let env = Env::new();
    bench_loop("analysis/jacobi_sweep_8_nodes", 500, || {
        analysis::analyze(black_box(&prog), black_box(sweep), &env, 8)
    });
}

fn bench_end_to_end() {
    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    bench_loop("end_to_end/jacobi_test_scale_opt", 10, || {
        execute(black_box(&prog), &ExecConfig::sm_opt(8))
    });
    bench_loop("end_to_end/jacobi_test_scale_unopt", 10, || {
        execute(black_box(&prog), &ExecConfig::sm_unopt(8))
    });
}

fn main() {
    println!("{:<44}{:>20}", "benchmark", "mean");
    bench_protocol();
    bench_sections();
    bench_analysis();
    bench_end_to_end();
}
