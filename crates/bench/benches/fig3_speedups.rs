//! Figure 3 — "Speedups with various configurations. Compiler-directed
//! protocol optimizations improve shared memory speedups in all cases."
//!
//! For each application: speedup on 8 nodes relative to a uniprocessor
//! run, for the five configurations the paper plots — unoptimized and
//! optimized shared memory in single-cpu and dual-cpu protocol-processing
//! modes, plus the message-passing backend.
//!
//! Shape targets from §6: optimization improves every shared-memory bar;
//! single-cpu bars improve proportionally more; message passing beats the
//! shared-memory versions only on `lu`; `grav` shows the weakest speedups
//! everywhere.

use fgdsm_apps::suite;
use fgdsm_bench::{json_row, run_app, scale, scale_label, NPROCS};

json_row! {
    struct Row {
        app: &'static str,
        sm_unopt_1cpu: f64,
        sm_opt_1cpu: f64,
        sm_unopt_2cpu: f64,
        sm_opt_2cpu: f64,
        mp: f64,
    }
}

fn main() {
    let s = scale();
    println!(
        "Figure 3: speedups on {NPROCS} nodes vs uniprocessor — {}\n",
        scale_label(s)
    );
    println!(
        "{:<10}{:>14}{:>14}{:>14}{:>14}{:>10}",
        "app", "unopt-1cpu", "opt-1cpu", "unopt-2cpu", "opt-2cpu", "mp"
    );
    let mut rows = Vec::new();
    for spec in suite(s) {
        let r = run_app(&spec);
        let row = Row {
            app: r.name,
            sm_unopt_1cpu: r.speedup(&r.unopt_single),
            sm_opt_1cpu: r.speedup(&r.opt_single),
            sm_unopt_2cpu: r.speedup(&r.unopt_dual),
            sm_opt_2cpu: r.speedup(&r.opt_dual),
            mp: r.speedup(&r.mp),
        };
        println!(
            "{:<10}{:>14.2}{:>14.2}{:>14.2}{:>14.2}{:>10.2}",
            row.app, row.sm_unopt_1cpu, row.sm_opt_1cpu, row.sm_unopt_2cpu, row.sm_opt_2cpu, row.mp
        );
        // Shape assertions (§6).
        assert!(
            row.sm_opt_1cpu > row.sm_unopt_1cpu && row.sm_opt_2cpu > row.sm_unopt_2cpu,
            "{}: optimization must improve both cpu configurations",
            row.app
        );
        assert!(
            row.sm_unopt_2cpu >= row.sm_unopt_1cpu,
            "{}: a dedicated protocol cpu cannot hurt",
            row.app
        );
        rows.push(row);
    }
    let get = |name: &str| rows.iter().find(|r| r.app == name).unwrap();
    // MP wins only on lu among the suite (vs optimized dual-cpu SM).
    assert!(
        get("lu").mp > get("lu").sm_opt_2cpu,
        "lu: message passing should win ({} vs {})",
        get("lu").mp,
        get("lu").sm_opt_2cpu
    );
    for app in ["pde", "shallow", "grav", "cg", "jacobi"] {
        assert!(
            get(app).mp < get(app).sm_opt_2cpu,
            "{app}: dual-cpu optimized SM should beat MP ({} vs {})",
            get(app).sm_opt_2cpu,
            get(app).mp
        );
    }
    // grav's speedups are the weakest of the suite (reduction-bound).
    let grav = get("grav").sm_opt_2cpu;
    for app in ["pde", "shallow", "cg", "jacobi"] {
        assert!(
            get(app).sm_opt_2cpu > grav,
            "{app} should outscale grav ({} vs {grav})",
            get(app).sm_opt_2cpu
        );
    }
    println!("\nshape checks passed: opt improves all SM bars; MP wins only on lu; grav weakest");
    fgdsm_bench::save_json("fig3", &rows);
}
