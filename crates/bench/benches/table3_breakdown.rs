//! Table 3 — "Reduction in miss count and communication time."
//!
//! Per application: compute time, unoptimized communication time in the
//! dual- and single-cpu configurations with the percentage reduction the
//! optimizations achieve, and the average per-node miss count with its
//! percentage reduction. The paper's values are printed alongside.
//!
//! Shape targets from §6: large miss-count reductions everywhere except
//! `grav` (small array extents → edge effects); communication-time
//! reductions substantial for the stencil codes, minor for `grav`.

use fgdsm_apps::suite;
use fgdsm_bench::{json_row, pct_reduction, run_app, scale, scale_label};

json_row! {
    struct Row {
        app: &'static str,
        compute_s: f64,
        comm_dual_s: f64,
        comm_dual_red_pct: f64,
        comm_single_s: f64,
        comm_single_red_pct: f64,
        misses_k: f64,
        miss_red_pct: f64,
    }
}

/// Paper Table 3 for reference columns.
type PaperRow = (&'static str, f64, f64, f64, f64, f64, f64, f64);
const PAPER: &[PaperRow] = &[
    ("pde", 33.6, 26.1, 58.6, 56.5, 61.9, 293.8, 74.6),
    ("shallow", 35.2, 10.9, 45.9, 21.5, 50.2, 55.8, 85.7),
    ("grav", 12.0, 11.6, 5.5, 17.8, 9.0, 42.5, 38.2),
    ("lu", 51.1, 27.0, 53.0, 32.9, 47.4, 85.8, 85.0),
    ("cg", 13.6, 9.8, 24.4, 18.4, 27.7, 57.9, 68.7),
    ("jacobi", 31.0, 4.3, 33.0, 9.5, 30.5, 22.5, 96.7),
];

fn main() {
    let s = scale();
    println!(
        "Table 3: reduction in miss count and communication time — {}\n",
        scale_label(s)
    );
    println!(
        "{:<9}{:>9}{:>11}{:>8}{:>8}{:>13}{:>8}{:>8}{:>10}{:>8}{:>8}",
        "app",
        "compute",
        "comm-2cpu",
        "%red",
        "paper",
        "comm-1cpu",
        "%red",
        "paper",
        "misses K",
        "%red",
        "paper"
    );
    let mut rows = Vec::new();
    for spec in suite(s) {
        let r = run_app(&spec);
        let p = PAPER.iter().find(|p| p.0 == spec.name).unwrap();
        let row = Row {
            app: r.name,
            compute_s: r.unopt_dual.report.compute_s(),
            comm_dual_s: r.unopt_dual.report.comm_s(),
            comm_dual_red_pct: pct_reduction(
                r.unopt_dual.report.comm_s(),
                r.opt_dual.report.comm_s(),
            ),
            comm_single_s: r.unopt_single.report.comm_s(),
            comm_single_red_pct: pct_reduction(
                r.unopt_single.report.comm_s(),
                r.opt_single.report.comm_s(),
            ),
            misses_k: r.unopt_dual.report.avg_misses() / 1e3,
            miss_red_pct: pct_reduction(
                r.unopt_dual.report.avg_misses(),
                r.opt_dual.report.avg_misses(),
            ),
        };
        println!(
            "{:<9}{:>8.1}s{:>10.1}s{:>7.1}%{:>7.1}%{:>12.1}s{:>7.1}%{:>7.1}%{:>10.1}{:>7.1}%{:>7.1}%",
            row.app,
            row.compute_s,
            row.comm_dual_s,
            row.comm_dual_red_pct,
            p.3,
            row.comm_single_s,
            row.comm_single_red_pct,
            p.5,
            row.misses_k,
            row.miss_red_pct,
            p.7
        );
        // Shape assertions.
        assert!(row.miss_red_pct > 0.0, "{}: must remove misses", row.app);
        assert!(
            row.comm_dual_red_pct > 0.0 && row.comm_single_red_pct > 0.0,
            "{}: must reduce communication time",
            row.app
        );
        assert!(
            row.comm_single_s > row.comm_dual_s,
            "{}: single-cpu communication must cost more",
            row.app
        );
        rows.push(row);
    }
    // grav removes the smallest fraction of misses (edge effects) and has
    // the smallest comm-time reduction (reduction-bound).
    let grav = rows.iter().find(|r| r.app == "grav").unwrap();
    for r in &rows {
        if r.app != "grav" {
            assert!(
                r.miss_red_pct > grav.miss_red_pct,
                "{}: grav must show the weakest miss reduction ({} vs {})",
                r.app,
                r.miss_red_pct,
                grav.miss_red_pct
            );
            assert!(
                r.comm_dual_red_pct > grav.comm_dual_red_pct,
                "{}: grav must show the weakest comm reduction",
                r.app
            );
        }
    }
    // jacobi removes the largest fraction of misses among the stencil
    // codes (perfectly regular, block-aligned columns); lu's broadcast
    // coverage rivals it at reduced scale, so lu is exempted.
    let jac = rows.iter().find(|r| r.app == "jacobi").unwrap();
    assert!(jac.miss_red_pct > 85.0, "jacobi should remove most misses");
    assert!(rows
        .iter()
        .filter(|r| r.app != "lu")
        .all(|r| r.miss_red_pct <= jac.miss_red_pct + 1e-9));
    println!("\nshape checks passed: grav weakest on both reductions; jacobi's miss reduction largest among stencils");
    fgdsm_bench::save_json("table3", &rows);
}
