//! Table 2 — "Application Suite": the six programs, their sources, the
//! problem sizes and memory footprints at the active scale.
//!
//! The paper's memory column was measured with single-precision arrays;
//! ours are `f64`, so at paper scale the single-precision apps show ≈2×
//! the published figure (the structure — array counts and extents — is
//! identical). The `paper MB` column restates Table 2.

use fgdsm_apps::{suite, Scale};
use fgdsm_bench::{json_row, scale, scale_label};

json_row! {
    struct Row {
        application: &'static str,
        source: &'static str,
        problem: String,
        memory_mb: f64,
        paper_mb: f64,
    }
}

fn main() {
    let s = scale();
    let paper_mb = [56.0, 28.0, 17.0, 4.0, 4.6, 32.0];
    let apps = suite(s);
    let rows: Vec<Row> = apps
        .iter()
        .zip(paper_mb)
        .map(|(a, p)| Row {
            application: a.name,
            source: a.source,
            problem: a.problem.clone(),
            memory_mb: a.memory_mb(),
            paper_mb: p,
        })
        .collect();
    println!("Table 2: application suite — {}\n", scale_label(s));
    println!(
        "{:<10}{:<28}{:<46}{:>10}{:>10}",
        "app", "source of HPF version", "problem size", "MB (f64)", "paper MB"
    );
    for r in &rows {
        println!(
            "{:<10}{:<28}{:<46}{:>10.1}{:>10.1}",
            r.application, r.source, r.problem, r.memory_mb, r.paper_mb
        );
    }
    if s == Scale::Paper {
        // Structural checks at paper scale: grav was already ~8-byte
        // (17 MB); the single-precision apps land at ≈2× Table 2.
        let by_name: std::collections::BTreeMap<_, _> =
            rows.iter().map(|r| (r.application, r.memory_mb)).collect();
        assert!((by_name["grav"] - 17.0).abs() < 1.5);
        assert!((by_name["jacobi"] / 32.0 - 2.0).abs() < 0.2);
        assert!((by_name["lu"] / 4.0 - 2.0).abs() < 0.2);
    }
    fgdsm_bench::save_json("table2", &rows);
}
