//! Figure 4 — "Benefits of bulk-transfer and run-time overhead
//! elimination."
//!
//! For each application (dual-cpu configuration): reduction in total
//! execution time relative to the unoptimized version, for the three
//! cumulative optimization levels the paper plots — base (sender-initiated
//! transfers only), +bulk transfer, +run-time overhead elimination.
//!
//! Shape targets from §6: each level adds benefit, and "bulk transfer is
//! the more important optimization".

use fgdsm_apps::suite;
use fgdsm_bench::{json_row, pct_reduction, run_opt_level, scale, scale_label, NPROCS};
use fgdsm_hpf::{execute, ExecConfig, OptLevel};

json_row! {
    struct Row {
        app: &'static str,
        base_pct: f64,
        bulk_pct: f64,
        full_pct: f64,
    }
}

fn main() {
    let s = scale();
    println!(
        "Figure 4: execution-time reduction vs unoptimized, dual-cpu — {}\n",
        scale_label(s)
    );
    println!(
        "{:<10}{:>16}{:>16}{:>20}",
        "app", "base opts", "+bulk transfer", "+overhead elim"
    );
    let mut rows = Vec::new();
    for spec in suite(s) {
        let unopt = execute(&spec.program, &ExecConfig::sm_unopt(NPROCS));
        let base = run_opt_level(&spec, OptLevel::base());
        let bulk = run_opt_level(&spec, OptLevel::base_bulk());
        let full = run_opt_level(&spec, OptLevel::full());
        let row = Row {
            app: spec.name,
            base_pct: pct_reduction(unopt.total_s(), base.total_s()),
            bulk_pct: pct_reduction(unopt.total_s(), bulk.total_s()),
            full_pct: pct_reduction(unopt.total_s(), full.total_s()),
        };
        println!(
            "{:<10}{:>15.1}%{:>15.1}%{:>19.1}%",
            row.app, row.base_pct, row.bulk_pct, row.full_pct
        );
        // Shape: monotone improvement across levels.
        assert!(
            row.bulk_pct >= row.base_pct - 0.2,
            "{}: bulk transfer must not hurt ({} vs {})",
            row.app,
            row.bulk_pct,
            row.base_pct
        );
        assert!(
            row.full_pct >= row.bulk_pct - 0.2,
            "{}: overhead elimination must not hurt ({} vs {})",
            row.app,
            row.full_pct,
            row.bulk_pct
        );
        rows.push(row);
    }
    // "Bulk transfer is the more important optimization": summed across
    // the suite, the bulk increment exceeds the overhead-elimination one.
    let bulk_gain: f64 = rows.iter().map(|r| r.bulk_pct - r.base_pct).sum();
    let rtoe_gain: f64 = rows.iter().map(|r| r.full_pct - r.bulk_pct).sum();
    assert!(
        bulk_gain > rtoe_gain,
        "bulk transfer should contribute more than overhead elimination \
         ({bulk_gain:.1} vs {rtoe_gain:.1} summed points)"
    );
    println!(
        "\nshape checks passed: monotone levels; bulk transfer contributes more \
         ({bulk_gain:.1} vs {rtoe_gain:.1} summed percentage points)"
    );
    fgdsm_bench::save_json("fig4", &rows);
}
