//! Extension experiment — the paper's §7 future-work workload class:
//! "benchmarks … that show a mix of simple affine array subscript and
//! indirect array subscripts, and are not amenable to purely
//! message-passing approaches."
//!
//! `irreg` runs an affine stencil plus an indirect gather per step. We
//! sweep the gather's locality (span) and compare shared memory (which
//! faults in exactly the touched blocks) against the message-passing
//! backend (which must ship each node everything it *might* touch —
//! conservatively, the whole array). The paper's §1 claim is the shape
//! target: shared memory wins decisively while the touched set is a
//! fraction of the array. The sweep also exposes the honest crossover:
//! when the gather effectively touches *everything*, one conservative
//! bulk broadcast beats block-granularity demand faulting — at which
//! point the conservative strategy is no longer conservative.

use fgdsm_apps::irreg;
use fgdsm_apps::Scale;
use fgdsm_bench::{json_row, scale, NPROCS};
use fgdsm_hpf::{execute, ExecConfig};

json_row! {
    struct Row {
        span: usize,
        sm_unopt_s: f64,
        sm_opt_s: f64,
        mp_s: f64,
        sm_bytes: u64,
        mp_bytes: u64,
    }
}

fn main() {
    let base = match scale() {
        Scale::Paper => irreg::Params::default_size(),
        Scale::Bench => irreg::Params::at(Scale::Bench),
        Scale::Test => irreg::Params::at(Scale::Test),
    };
    println!(
        "Extension: affine + indirect mix (irreg, n = {}, {} iters)\n",
        base.n, base.iters
    );
    println!(
        "{:>8}{:>14}{:>12}{:>12}{:>14}{:>14}",
        "span", "sm-unopt (s)", "sm-opt (s)", "mp (s)", "sm bytes", "mp bytes"
    );
    let spans = [base.n / 256, base.n / 64, base.n / 16, base.n / 4, base.n];
    let mut rows = Vec::new();
    for span in spans {
        let p = irreg::Params {
            span: span.max(1),
            ..base
        };
        let prog = irreg::build(&p);
        let sm = execute(&prog, &ExecConfig::sm_unopt(NPROCS));
        let opt = execute(&prog, &ExecConfig::sm_opt(NPROCS));
        let mp = execute(&prog, &ExecConfig::mp(NPROCS));
        assert_eq!(sm.data, mp.data, "span {span}: backends disagree");
        let row = Row {
            span: p.span,
            sm_unopt_s: sm.total_s(),
            sm_opt_s: opt.total_s(),
            mp_s: mp.total_s(),
            sm_bytes: sm.report.total_bytes(),
            mp_bytes: mp.report.total_bytes(),
        };
        println!(
            "{:>8}{:>14.4}{:>12.4}{:>12.4}{:>14}{:>14}",
            row.span, row.sm_unopt_s, row.sm_opt_s, row.mp_s, row.sm_bytes, row.mp_bytes
        );
        rows.push(row);
    }
    // Shape: while the gather touches a fraction of the array (spans up
    // to n/16 here), shared memory wins decisively and moves less data.
    for r in rows.iter().take(3) {
        assert!(
            r.sm_unopt_s < r.mp_s,
            "span {}: shared memory must beat conservative MP",
            r.span
        );
        assert!(r.sm_bytes < r.mp_bytes);
    }
    // SM traffic tracks the touched set; MP's is locality-insensitive.
    assert!(rows.last().unwrap().sm_bytes > 4 * rows[0].sm_bytes);
    let mp_spread = rows.last().unwrap().mp_bytes as f64 / rows[0].mp_bytes as f64;
    assert!(
        mp_spread < 1.5,
        "MP volume should be locality-insensitive (spread {mp_spread:.2})"
    );
    // The crossover: at full scatter, demand faulting at block grain
    // costs more than one bulk broadcast.
    assert!(rows.last().unwrap().mp_s < rows.last().unwrap().sm_unopt_s);
    println!(
        "\nshape checks passed: shared memory wins while the touched set is a \
         fraction of the array; traffic tracks locality; the full-scatter \
         crossover favors bulk broadcast"
    );
    fgdsm_bench::save_json("ext_irregular", &rows);
}
