//! Table 1 — "Some details of the cluster configuration used."
//!
//! Measures, on the simulated cluster, the three quantities the paper
//! reports for its SS-20/Myrinet platform and prints them next to the
//! published values:
//!
//! | quantity | paper |
//! |---|---|
//! | Minimum roundtrip latency for short (4 byte) message | 40 µs |
//! | Network bandwidth | 20 MB/s |
//! | Read-miss processing time for 128-byte block (2 cpu) | 93 µs |

use fgdsm_bench::json_row;
use fgdsm_protocol::Dsm;
use fgdsm_tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};

json_row! {
    struct Row {
        quantity: &'static str,
        paper: f64,
        measured: f64,
        unit: &'static str,
    }
}

fn measured_roundtrip_us(cfg: &CostModel) -> f64 {
    cfg.roundtrip_ns(4) as f64 / 1e3
}

fn measured_bandwidth_mbs(cfg: &CostModel) -> f64 {
    // 1 byte per per_byte_ns nanoseconds.
    1e9 / cfg.per_byte_ns as f64 / 1e6
}

fn measured_read_miss_us() -> f64 {
    // Drive an actual clean read miss through the protocol and time it.
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(1024);
    let mut d = Dsm::new(Cluster::new(2, cfg, &layout, HomePolicy::RoundRobin));
    d.cluster.map_range(1, 0, 16); // page mapping is a separate, one-time cost
    let t0 = d.cluster.clock_ns(1);
    d.read_access(1, 0);
    (d.cluster.clock_ns(1) - t0) as f64 / 1e3
}

fn main() {
    let cfg = CostModel::paper_dual_cpu();
    let rows = vec![
        Row {
            quantity: "Minimum roundtrip latency for short (4 bytes) message",
            paper: 40.0,
            measured: measured_roundtrip_us(&cfg),
            unit: "us",
        },
        Row {
            quantity: "Network bandwidth",
            paper: 20.0,
            measured: measured_bandwidth_mbs(&cfg),
            unit: "MB/s",
        },
        Row {
            quantity: "Read miss processing time for 128 byte block (2 cpu)",
            paper: 93.0,
            measured: measured_read_miss_us(),
            unit: "us",
        },
    ];
    println!("Table 1: cluster configuration (simulated vs. paper)\n");
    println!("{:<56}{:>10}{:>12}  unit", "quantity", "paper", "measured");
    for r in &rows {
        println!(
            "{:<56}{:>10.1}{:>12.1}  {}",
            r.quantity, r.paper, r.measured, r.unit
        );
        let rel = (r.measured - r.paper).abs() / r.paper;
        assert!(
            rel < 0.05,
            "{}: measured {} deviates more than 5% from the calibration target {}",
            r.quantity,
            r.measured,
            r.paper
        );
    }
    println!(
        "\nProcessor: simulated 66 MHz HyperSPARC (2) — per-kernel costs in \
         fgdsm-apps\nNetwork interface: simulated Myrinet cost model in \
         fgdsm-tempest::costs"
    );
    fgdsm_bench::save_json("table1", &rows);
}
