//! Extension experiment — §3's aside that "general update-based protocols
//! have analogous problems": run the suite's unoptimized shared memory
//! over a **write-update** default protocol and compare against the
//! paper's eager-invalidate protocol and the compiler-optimized version.
//!
//! Update protocols eliminate re-fetch misses (copies stay valid) but pay
//! per-sharer traffic at every release; for the suite's stable
//! producer→consumer patterns they are competitive on misses yet the
//! compiler-orchestrated transfers still win — supporting the paper's
//! §7 claim that what the compiler needs is not a different *general*
//! protocol but an escape from generality.

use fgdsm_apps::suite;
use fgdsm_bench::{json_row, scale, scale_label, NPROCS};
use fgdsm_hpf::{execute, ExecConfig};

json_row! {
    struct Row {
        app: &'static str,
        invalidate_s: f64,
        update_s: f64,
        opt_s: f64,
        invalidate_misses: f64,
        update_misses: f64,
    }
}

fn main() {
    let s = scale();
    println!(
        "Extension: eager-invalidate vs write-update default protocols — {}\n",
        scale_label(s)
    );
    println!(
        "{:<10}{:>14}{:>12}{:>12}{:>14}{:>14}",
        "app", "inval (s)", "update (s)", "opt (s)", "inval misses", "upd misses"
    );
    let mut rows = Vec::new();
    for spec in suite(s) {
        let inval = execute(&spec.program, &ExecConfig::sm_unopt(NPROCS));
        let upd = execute(&spec.program, &ExecConfig::sm_unopt(NPROCS).write_update());
        let opt = execute(&spec.program, &ExecConfig::sm_opt(NPROCS));
        assert_eq!(
            inval.data, upd.data,
            "{}: protocols disagree on data",
            spec.name
        );
        let row = Row {
            app: spec.name,
            invalidate_s: inval.total_s(),
            update_s: upd.total_s(),
            opt_s: opt.total_s(),
            invalidate_misses: inval.report.avg_misses(),
            update_misses: upd.report.avg_misses(),
        };
        println!(
            "{:<10}{:>14.3}{:>12.3}{:>12.3}{:>14.0}{:>14.0}",
            row.app,
            row.invalidate_s,
            row.update_s,
            row.opt_s,
            row.invalidate_misses,
            row.update_misses
        );
        // Update protocols fault dramatically less (copies stay valid)…
        // except where data is read once and never again (lu's moving
        // pivot column — the textbook update-protocol pathology, which
        // also makes lu *slower* under update).
        assert!(
            row.update_misses <= row.invalidate_misses,
            "{}: update cannot add misses",
            spec.name
        );
        rows.push(row);
    }
    // …but the compiler-optimized invalidate protocol still wins overall
    // on the suite: generality (update every sharer, every release) costs
    // more than compiler-orchestrated point-to-point pushes.
    let strict = rows
        .iter()
        .filter(|r| r.update_misses < r.invalidate_misses)
        .count();
    assert!(
        strict >= 4,
        "most apps should re-use cached copies under update"
    );
    let lu = rows.iter().find(|r| r.app == "lu").unwrap();
    assert!(
        lu.update_s > lu.invalidate_s,
        "lu's one-shot broadcasts should make update *slower*"
    );
    let opt_total: f64 = rows.iter().map(|r| r.opt_s).sum();
    let upd_total: f64 = rows.iter().map(|r| r.update_s).sum();
    let inv_total: f64 = rows.iter().map(|r| r.invalidate_s).sum();
    assert!(
        opt_total < upd_total,
        "compiler-optimized ({opt_total:.2}s) should beat write-update ({upd_total:.2}s)"
    );
    println!(
        "\nsuite totals: invalidate {inv_total:.2}s, update {upd_total:.2}s, \
         compiler-optimized {opt_total:.2}s"
    );
    println!("shape checks passed: update removes misses; compiler optimization still wins");
    fgdsm_bench::save_json("ext_update", &rows);
}
