//! Wire-layer accounting invariants for the channel-backed backend.
//!
//! The `chan` backend is the proof of the wire seam: every inter-node
//! transfer is encoded into an owned `WireMsg` byte frame, carried over
//! an mpsc channel, and decoded on the far side — no shared-memory
//! shortcut exists. These tests pin down what that buys us across the
//! whole Table 2 suite:
//!
//! * the frame and payload counters are live (`wire_frames > 0` whenever
//!   the cluster moved any bytes at all) and reconcile against the
//!   simulator's own accounting (`wire_payload_bytes ≤ Σ bytes_sent`,
//!   since `NodeStats` charges a fixed per-message header on top of the
//!   data the envelope carries, and reductions are noted but never
//!   enveloped);
//! * the zero-copy fast path routes *nothing* through the wire layer, so
//!   the counters prove which path ran;
//! * wire accounting stays out of the canonical artifacts: `chan`
//!   reports, profiles, and gathered data are byte-identical to
//!   `sm_opt`'s (full opt level), the backend it mirrors.

use fgdsm_apps::{suite, Scale};
use fgdsm_bench::NPROCS;
use fgdsm_hpf::{execute, ExecConfig};
use fgdsm_tempest::NodeStats;

/// Sum the per-node stats of one run into a whole-cluster view.
fn cluster_totals(run: &fgdsm_hpf::RunResult) -> NodeStats {
    let mut whole = NodeStats::default();
    for n in &run.report.nodes {
        whole.accumulate(n);
    }
    whole
}

/// The chan backend must route every transfer through envelopes, and the
/// envelope accounting must reconcile with the simulator's byte charges.
#[test]
fn chan_wire_accounting_reconciles() {
    for spec in suite(Scale::Test) {
        let run = execute(&spec.program, &ExecConfig::chan(NPROCS));
        let whole = cluster_totals(&run);
        assert!(
            whole.bytes_sent > 0,
            "{}: suite app moved no bytes — not a useful wire check",
            spec.name
        );
        assert!(
            run.wire_frames > 0,
            "{}: chan run moved {} bytes but routed no wire frames",
            spec.name,
            whole.bytes_sent
        );
        assert!(
            run.wire_payload_bytes > 0,
            "{}: chan run routed {} frames with no payload",
            spec.name,
            run.wire_frames
        );
        assert!(
            run.wire_payload_bytes <= whole.bytes_sent,
            "{}: wire payload {} exceeds cluster bytes_sent {} — envelopes \
             carry data the simulator never charged for",
            spec.name,
            run.wire_payload_bytes,
            whole.bytes_sent
        );
        if whole.reductions == 0 {
            for (n, hm) in run.report.heatmaps.iter().enumerate() {
                assert_eq!(
                    hm.unattributed_bytes, 0,
                    "{}: node {n} has unattributed bytes without reductions",
                    spec.name
                );
            }
        }
    }
}

/// The zero-copy fast path must not touch the wire layer: its counters
/// stay at zero, which is how we know `chan`/strict actually exercised
/// the envelopes.
#[test]
fn fast_path_routes_no_frames() {
    for spec in suite(Scale::Test) {
        for (backend, cfg) in [
            ("sm_unopt", ExecConfig::sm_unopt(NPROCS)),
            ("sm_opt", ExecConfig::sm_opt(NPROCS)),
            ("mp", ExecConfig::mp(NPROCS)),
        ] {
            let run = execute(&spec.program, &cfg);
            assert_eq!(
                (run.wire_frames, run.wire_payload_bytes),
                (0, 0),
                "{}/{backend}: fast path leaked into the wire layer",
                spec.name
            );
            let strict = execute(&spec.program, &cfg.clone().strict());
            assert!(
                strict.wire_frames >= run.wire_frames,
                "{}/{backend}: strict mode routed fewer frames than fast path",
                spec.name
            );
        }
    }
}

/// Wire accounting is deliberately outside the canonical report: `chan`
/// must be byte-identical to `sm_opt` at the full opt level in every
/// artifact the suite emits.
#[test]
fn chan_artifacts_match_sm_opt() {
    for spec in suite(Scale::Test) {
        let chan = execute(&spec.program, &ExecConfig::chan(NPROCS));
        let smopt = execute(&spec.program, &ExecConfig::sm_opt(NPROCS));
        assert_eq!(
            chan.report.to_json(),
            smopt.report.to_json(),
            "{}: chan report diverged from sm_opt",
            spec.name
        );
        assert_eq!(
            chan.report.profile_json(),
            smopt.report.profile_json(),
            "{}: chan profile artifact diverged from sm_opt",
            spec.name
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&chan.data),
            bits(&smopt.data),
            "{}: chan gathered data diverged from sm_opt",
            spec.name
        );
        assert_eq!(
            chan.scalars, smopt.scalars,
            "{}: chan scalars diverged from sm_opt",
            spec.name
        );
    }
}
