//! Wall-clock telemetry guards.
//!
//! Two properties pin the metrics layer:
//!
//! * **Byte-identity**: telemetry is a pure side channel. Every canonical
//!   artifact — report JSON, structured trace, profile JSON, Chrome
//!   trace, gathered data, scalars — must be byte-identical with metrics
//!   on vs off, across the serial, threaded, `chan`, and (when the
//!   sandbox allows sockets) `tcp` configurations.
//! * **Liveness + conservation**: a metered `tcp` run must actually
//!   populate per-class histograms on both sides of the socket, merge
//!   the workers' registries under node-tagged keys, conserve the wire's
//!   payload accounting, and splice into a merged Perfetto trace that
//!   the bench JSON parser accepts.

use fgdsm_apps::{jacobi, suite, Scale};
use fgdsm_bench::{json, NPROCS};
use fgdsm_hpf::{execute_profiled, tcp_available, ExecConfig};

/// Canonical artifacts are byte-identical with telemetry on vs off.
#[test]
fn metrics_on_vs_off_canonical_artifacts_are_byte_identical() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let mut configs: Vec<(&str, ExecConfig)> = vec![
        ("sm_opt/serial", ExecConfig::sm_opt(NPROCS).serial()),
        ("sm_opt/threads", ExecConfig::sm_opt(NPROCS).threads(3)),
        ("sm_opt/strict", ExecConfig::sm_opt(NPROCS).strict()),
        ("chan", ExecConfig::chan(NPROCS)),
    ];
    if tcp_available() {
        configs.push(("tcp", ExecConfig::tcp(NPROCS)));
    } else {
        eprintln!("notice: sandbox forbids sockets; byte-identity guard skips the tcp config");
    }
    for (name, cfg) in configs {
        let (off, off_trace, off_chrome) = execute_profiled(&prog, &cfg.clone().unmetered());
        let (on, on_trace, on_chrome) = execute_profiled(&prog, &cfg.clone().metered());
        assert_eq!(
            off.report.to_json(),
            on.report.to_json(),
            "{name}: metered report diverged"
        );
        assert_eq!(off_trace, on_trace, "{name}: metered trace diverged");
        assert_eq!(off_chrome, on_chrome, "{name}: metered chrome diverged");
        assert_eq!(
            off.report.profile_json(),
            on.report.profile_json(),
            "{name}: metered profile diverged"
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&off.data), bits(&on.data), "{name}: data diverged");
        assert_eq!(off.scalars, on.scalars, "{name}: scalars diverged");
        assert!(
            off.metrics().is_none(),
            "{name}: unmetered run must carry no registry"
        );
        assert!(
            off.wire_spans.is_empty(),
            "{name}: unmetered run must record no wire spans"
        );
        // On the wire configurations the metered run must have recorded
        // something; the fast path has no wire seam to observe.
        if off.wire_frames > 0 {
            let reg = on
                .metrics()
                .unwrap_or_else(|| panic!("{name}: metered wire run must carry a registry"));
            assert!(!reg.is_empty(), "{name}: metered registry is empty");
            assert!(
                on.check_metrics_conservation().is_ok(),
                "{name}: {:?}",
                on.check_metrics_conservation()
            );
        }
    }
}

/// A metered `tcp` run of the whole suite: per-class histograms on both
/// sides, node-tagged worker keys, conservation, and a valid merged
/// Perfetto document.
#[test]
fn tcp_telemetry_populates_both_sides_and_merges_cleanly() {
    if !tcp_available() {
        eprintln!(
            "notice: sandbox forbids sockets; \
             skipping tcp_telemetry_populates_both_sides_and_merges_cleanly"
        );
        return;
    }
    for spec in suite(Scale::Test) {
        let (run, _trace, chrome) =
            execute_profiled(&spec.program, &ExecConfig::tcp(NPROCS).metered());
        let reg = run.metrics().expect("metered tcp run has a registry");

        // Coordinator side: for every exercised class the full pipeline
        // is histogrammed, one route sample per frame.
        let mut exercised = 0u64;
        for kind in 0u8..=4 {
            let class = fgdsm_tempest::metrics::class_name(kind);
            let frames = reg.counter(&format!("coord.frames.{class}"));
            if frames == 0 {
                continue;
            }
            exercised += frames;
            for stage in ["encode", "route", "decode"] {
                let h = reg
                    .hist(&format!("coord.{stage}.{class}"))
                    .unwrap_or_else(|| panic!("{}: no coord.{stage}.{class} histogram", spec.name));
                assert_eq!(
                    h.count(),
                    frames,
                    "{}: coord.{stage}.{class} must sample every frame",
                    spec.name
                );
            }
        }
        assert_eq!(
            exercised, run.wire_frames,
            "{}: per-class frame counters must cover every routed frame",
            spec.name
        );

        // Worker side: at least one node shipped a registry home, with
        // recv histograms under its node-tagged prefix.
        let worker_keys: Vec<&str> = reg
            .iter()
            .map(|(k, _)| k)
            .filter(|k| k.starts_with("node"))
            .collect();
        assert!(
            !worker_keys.is_empty(),
            "{}: no node-tagged worker metrics were merged",
            spec.name
        );
        assert!(
            worker_keys.iter().any(|k| k.contains(".recv.")),
            "{}: workers recorded no recv histograms: {worker_keys:?}",
            spec.name
        );

        run.check_metrics_conservation()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

        // Merged Perfetto document: parses, keeps the virtual-clock
        // coordinator events on pid 0, adds worker pid tracks with
        // wall-clock socket-batch spans and process_name metadata.
        assert!(
            !run.wire_spans.is_empty(),
            "{}: metered tcp run recorded no socket-batch spans",
            spec.name
        );
        let merged = run.merged_chrome(&chrome);
        let v = json::parse(&merged)
            .unwrap_or_else(|e| panic!("{}: merged chrome is not JSON: {e}", spec.name));
        let events = v.as_arr().expect("merged chrome is an array");
        let pid = |ev: &json::Value| ev.get("pid").and_then(|p| p.as_u64()).unwrap();
        let ph = |ev: &json::Value| ev.get("ph").and_then(|p| p.as_str()).unwrap().to_string();
        assert!(
            events.iter().any(|e| pid(e) == 0),
            "{}: merged trace lost the coordinator track",
            spec.name
        );
        assert!(
            events.iter().any(|e| pid(e) >= 1 && ph(e) == "X"),
            "{}: merged trace has no worker wall-clock spans",
            spec.name
        );
        let labels = events.iter().filter(|e| ph(e) == "M").count();
        assert!(
            labels >= 2,
            "{}: merged trace must label the coordinator and at least one worker, got {labels}",
            spec.name
        );
    }
}
