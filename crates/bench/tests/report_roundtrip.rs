//! `ClusterReport::to_json` → bench JSON parser round trip.
//!
//! The canonical report JSON is hand-rolled (no serde); this pins its
//! shape against the equally hand-rolled parser consumers use: parsing
//! the encoding back must reproduce every per-node counter field exactly,
//! on a real multi-backend application run. A field added to
//! `NodeStats`' `with_stat_fields!` list shows up here automatically via
//! `for_each_field`.

use fgdsm_apps::{jacobi, Scale};
use fgdsm_bench::json;
use fgdsm_hpf::{execute, ExecConfig};

const NPROCS: usize = 4;

#[test]
fn report_json_roundtrips_every_counter() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    for (name, cfg) in [
        ("sm-unopt", ExecConfig::sm_unopt(NPROCS)),
        ("sm-opt", ExecConfig::sm_opt(NPROCS)),
        ("mp", ExecConfig::mp(NPROCS)),
    ] {
        let report = execute(&prog, &cfg).report;
        let v = json::parse(&report.to_json())
            .unwrap_or_else(|e| panic!("{name}: report JSON does not parse: {e}"));
        assert_eq!(
            v.get("makespan_ns").and_then(|m| m.as_u64()),
            Some(report.makespan_ns),
            "{name}: makespan_ns did not round-trip"
        );
        let nodes = v
            .get("nodes")
            .and_then(|n| n.as_arr())
            .unwrap_or_else(|| panic!("{name}: report JSON has no nodes array"));
        assert_eq!(nodes.len(), report.nodes.len(), "{name}: node count");
        for (i, (node, stats)) in nodes.iter().zip(&report.nodes).enumerate() {
            stats.for_each_field(|field, want| {
                let got = node.get(field).and_then(|f| f.as_u64());
                assert_eq!(
                    got,
                    Some(want),
                    "{name}: node {i} field {field} did not round-trip"
                );
            });
        }
    }
}

/// The profile JSON (intervals / false-sharing / heatmaps) parses with
/// the same consumer parser and its interval node lists carry the full
/// stats encoding.
#[test]
fn profile_json_parses_and_intervals_carry_node_stats() {
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let report = execute(&prog, &ExecConfig::sm_opt(NPROCS)).report;
    let v = json::parse(&report.profile_json()).expect("profile JSON parses");
    let intervals = v
        .get("intervals")
        .and_then(|i| i.as_arr())
        .expect("profile JSON has intervals");
    assert_eq!(intervals.len(), report.intervals.len());
    for (iv, want) in intervals.iter().zip(&report.intervals) {
        assert_eq!(
            iv.get("step").and_then(|s| s.as_u64()),
            Some(want.step as u64)
        );
        let nodes = iv
            .get("nodes")
            .and_then(|n| n.as_arr())
            .expect("interval nodes");
        assert_eq!(nodes.len(), NPROCS);
        for (node, stats) in nodes.iter().zip(&want.nodes) {
            stats.for_each_field(|field, want| {
                assert_eq!(node.get(field).and_then(|f| f.as_u64()), Some(want));
            });
        }
    }
    let heatmaps = v
        .get("heatmaps")
        .and_then(|h| h.as_arr())
        .expect("profile JSON has heatmaps");
    assert_eq!(heatmaps.len(), NPROCS);
}
