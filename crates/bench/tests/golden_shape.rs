//! Golden-shape regression test for Table 3's headline result: the
//! fraction of block misses the compiler-orchestrated protocol removes.
//!
//! Pins the miss-reduction percentages of the best (jacobi: perfectly
//! regular, block-aligned columns) and worst (grav: small extents, edge
//! effects) applications at the reduced benchmark scale. The paper
//! (Table 3, paper scale) reports 96.7% for jacobi and 38.2% for grav; at
//! the reduced scale the measured values are 93.8% and 38.4%. Any change
//! to the analysis, the ctl contract, or a comm backend that shifts these
//! by more than the tolerance is a behavioral regression, not noise — the
//! simulator is deterministic.

use fgdsm_apps::{grav, jacobi, shallow, Scale};
use fgdsm_bench::{pct_reduction, NPROCS};
use fgdsm_hpf::{execute, ExecConfig, Program};

fn miss_reduction(prog: &Program) -> f64 {
    let unopt = execute(prog, &ExecConfig::sm_unopt(NPROCS));
    let opt = execute(prog, &ExecConfig::sm_opt(NPROCS));
    // All backends must agree on the data; the optimization only changes
    // *how* values move, never what they are.
    assert_eq!(unopt.data, opt.data, "opt backend changed the data");
    pct_reduction(unopt.report.avg_misses(), opt.report.avg_misses())
}

#[test]
fn jacobi_miss_reduction_matches_table3() {
    let red = miss_reduction(&jacobi::build(&jacobi::Params::at(Scale::Bench)));
    assert!(
        (red - 93.8).abs() < 1.0,
        "jacobi miss reduction drifted: measured {red:.1}%, pinned 93.8% \
         (paper Table 3: 96.7% at paper scale)"
    );
}

#[test]
fn grav_miss_reduction_matches_table3() {
    let red = miss_reduction(&grav::build(&grav::Params::at(Scale::Bench)));
    assert!(
        (red - 38.4).abs() < 1.0,
        "grav miss reduction drifted: measured {red:.1}%, pinned 38.4% \
         (paper Table 3: 38.2% at paper scale)"
    );
}

/// Figure 4's ablation must keep its qualitative ordering on the
/// dual-cpu model: each added optimization strictly reduces execution
/// time (base > +bulk > +rtoe) for the regular stencil apps the paper
/// uses to motivate them. The simulator is deterministic, so a reversal
/// is a planner/backend regression, not noise.
#[test]
fn figure4_ablation_ordering_holds() {
    use fgdsm_bench::run_opt_level;
    use fgdsm_hpf::OptLevel;

    for spec in [
        jacobi::spec(&jacobi::Params::at(Scale::Bench)),
        shallow::spec(&shallow::Params::at(Scale::Bench)),
    ] {
        let base = run_opt_level(&spec, OptLevel::base()).total_s();
        let bulk = run_opt_level(&spec, OptLevel::base_bulk()).total_s();
        let full = run_opt_level(&spec, OptLevel::full()).total_s();
        assert!(
            base > bulk,
            "{}: bulk transfer no longer helps (base {base:.4}s vs +bulk {bulk:.4}s)",
            spec.name
        );
        assert!(
            bulk > full,
            "{}: run-time overhead elimination no longer helps \
             (+bulk {bulk:.4}s vs +rtoe {full:.4}s)",
            spec.name
        );
    }
}
