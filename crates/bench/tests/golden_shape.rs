//! Golden-shape regression test for Table 3's headline result: the
//! fraction of block misses the compiler-orchestrated protocol removes.
//!
//! Pins the miss-reduction percentages of the best (jacobi: perfectly
//! regular, block-aligned columns) and worst (grav: small extents, edge
//! effects) applications at the reduced benchmark scale. The paper
//! (Table 3, paper scale) reports 96.7% for jacobi and 38.2% for grav; at
//! the reduced scale the measured values are 93.8% and 38.4%. Any change
//! to the analysis, the ctl contract, or a comm backend that shifts these
//! by more than the tolerance is a behavioral regression, not noise — the
//! simulator is deterministic.

use fgdsm_apps::{grav, jacobi, Scale};
use fgdsm_bench::{pct_reduction, NPROCS};
use fgdsm_hpf::{execute, ExecConfig, Program};

fn miss_reduction(prog: &Program) -> f64 {
    let unopt = execute(prog, &ExecConfig::sm_unopt(NPROCS));
    let opt = execute(prog, &ExecConfig::sm_opt(NPROCS));
    // All backends must agree on the data; the optimization only changes
    // *how* values move, never what they are.
    assert_eq!(unopt.data, opt.data, "opt backend changed the data");
    pct_reduction(unopt.report.avg_misses(), opt.report.avg_misses())
}

#[test]
fn jacobi_miss_reduction_matches_table3() {
    let red = miss_reduction(&jacobi::build(&jacobi::Params::at(Scale::Bench)));
    assert!(
        (red - 93.8).abs() < 1.0,
        "jacobi miss reduction drifted: measured {red:.1}%, pinned 93.8% \
         (paper Table 3: 96.7% at paper scale)"
    );
}

#[test]
fn grav_miss_reduction_matches_table3() {
    let red = miss_reduction(&grav::build(&grav::Params::at(Scale::Bench)));
    assert!(
        (red - 38.4).abs() < 1.0,
        "grav miss reduction drifted: measured {red:.1}%, pinned 38.4% \
         (paper Table 3: 38.2% at paper scale)"
    );
}
