//! Wire-layer accounting invariants for the socket-backed `tcp` backend.
//!
//! The `tcp` backend carries the same envelope discipline as `chan` over
//! real sockets to spawned `fgdsm-node` worker processes, so the same
//! accounting invariants hold — plus two it alone can prove:
//!
//! * the measured route time (`wire_route_ns`) is live: socket
//!   round-trips cost real host nanoseconds, which the virtual clock
//!   never sees (canonical artifacts stay byte-identical to `sm_opt`);
//! * the *nodes'* own counters reconcile with the coordinator's: each
//!   worker reports its served frame and payload totals in `ByeStats`
//!   at orderly teardown, and the sums must match what the coordinator
//!   routed — double-entry bookkeeping across address spaces.
//!
//! Every test skips with a notice when the sandbox forbids sockets.

use fgdsm_apps::{suite, Scale};
use fgdsm_bench::NPROCS;
use fgdsm_hpf::{execute, tcp_available, ExecConfig};
use fgdsm_net::{NetGeometry, SocketOpts, SocketTransport};
use fgdsm_protocol::wire::WireHeader;
use fgdsm_protocol::{WireMsg, WireTransport};

/// The tcp backend must route every transfer through the sockets, the
/// envelope accounting must reconcile with the simulator's byte charges,
/// and — unlike every in-process backend — the measured route time must
/// be nonzero while the canonical artifacts stay byte-identical to
/// `sm_opt`.
#[test]
fn tcp_wire_accounting_reconciles_and_artifacts_match_sm_opt() {
    if !tcp_available() {
        eprintln!(
            "notice: sandbox forbids sockets; skipping tcp_wire_accounting_reconciles_and_artifacts_match_sm_opt"
        );
        return;
    }
    for spec in suite(Scale::Test) {
        let tcp = execute(&spec.program, &ExecConfig::tcp(NPROCS));
        let smopt = execute(&spec.program, &ExecConfig::sm_opt(NPROCS));
        let bytes_sent: u64 = tcp.report.nodes.iter().map(|n| n.bytes_sent).sum();
        assert!(
            tcp.wire_frames > 0,
            "{}: tcp run moved {bytes_sent} bytes but routed no wire frames",
            spec.name
        );
        assert!(
            tcp.wire_payload_bytes > 0 && tcp.wire_payload_bytes <= bytes_sent,
            "{}: wire payload {} must be positive and ≤ cluster bytes_sent {}",
            spec.name,
            tcp.wire_payload_bytes,
            bytes_sent
        );
        assert!(
            tcp.wire_route_ns() > 0,
            "{}: socket round-trips must accrue measured route time",
            spec.name
        );
        assert_eq!(
            smopt.wire_route_ns(),
            0,
            "{}: the in-process fast path never routes",
            spec.name
        );
        assert_eq!(
            tcp.report.to_json(),
            smopt.report.to_json(),
            "{}: tcp report diverged from sm_opt",
            spec.name
        );
        assert_eq!(
            tcp.report.profile_json(),
            smopt.report.profile_json(),
            "{}: tcp profile artifact diverged from sm_opt",
            spec.name
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&tcp.data),
            bits(&smopt.data),
            "{}: tcp gathered data diverged from sm_opt",
            spec.name
        );
        assert_eq!(
            tcp.scalars, smopt.scalars,
            "{}: tcp scalars diverged from sm_opt",
            spec.name
        );
    }
}

/// Double-entry bookkeeping across address spaces: drive a transport
/// directly, count what the coordinator routes, and check the workers'
/// `ByeStats` totals agree frame for frame and byte for byte — while
/// every reply round-trips as the identity.
#[test]
fn remote_bye_stats_reconcile_with_coordinator_counts() {
    if !tcp_available() {
        eprintln!(
            "notice: sandbox forbids sockets; skipping remote_bye_stats_reconcile_with_coordinator_counts"
        );
        return;
    }
    let geom = NetGeometry {
        nprocs: 3,
        wpb: 4,
        seg_words: 64,
    };
    let mut t = SocketTransport::spawn(geom, SocketOpts::default())
        .expect("tcp_available said sockets work");
    let msgs_for = |dst: usize| {
        vec![
            WireMsg::Push {
                hdr: WireHeader::for_blocks(0, dst, (0, 0), 7, 2, 2),
                start_block: 2,
                n_blocks: 2,
                words: vec![11, 22, 33, 44],
            },
            WireMsg::Diff {
                hdr: WireHeader::for_blocks(0, dst, (0, 1), 7, 3, 1),
                block: 3,
                mask: 0b1011,
                words: vec![9, 8, 7],
            },
        ]
    };
    let (mut sent_frames, mut sent_payload) = (0u64, 0u64);
    // Two batches per node so the per-node serve loop iterates.
    for _ in 0..2 {
        for dst in 1..geom.nprocs {
            let msgs = msgs_for(dst);
            let frames: Vec<Vec<u8>> = msgs.iter().map(|m| m.to_bytes()).collect();
            sent_frames += frames.len() as u64;
            sent_payload += msgs.iter().map(|m| m.payload_bytes()).sum::<u64>();
            let back = t.route(dst, frames.clone()).expect("clean route");
            assert_eq!(back, frames, "apply + re-encode must be the identity");
        }
    }
    t.shutdown();
    let (remote_frames, remote_payload, reporters) = t.remote_stats();
    assert_eq!(
        reporters, geom.nprocs,
        "every worker must report ByeStats at orderly teardown \
         (node 0 served nothing but still reports)"
    );
    assert_eq!(
        (remote_frames, remote_payload),
        (sent_frames, sent_payload),
        "workers' served totals must reconcile with the coordinator's routed totals"
    );
}
