//! Serial vs. threaded determinism (the sharded-executor invariant).
//!
//! The compute phase dispatches kernels over disjoint `NodeShard`s on
//! real threads; every charge, trace event, and memory write it performs
//! is shard-local, so thread scheduling must not be observable. These
//! tests pin that down end to end: a serial run and a 4-worker run of
//! the same program must produce byte-identical canonical report JSON,
//! byte-identical per-node trace streams, and bit-identical gathered
//! segment data.

use fgdsm_apps::{suite, AppSpec, Scale};
use fgdsm_bench::NPROCS;
use fgdsm_hpf::{execute_traced, ExecConfig};

/// Run `spec` under `cfg` serial and with 4 workers; assert equality of
/// every observable output.
fn assert_deterministic(spec: &AppSpec, cfg: &ExecConfig, label: &str) {
    let (rs, ts) = execute_traced(&spec.program, &cfg.clone().serial());
    let (rp, tp) = execute_traced(&spec.program, &cfg.clone().threads(4));
    assert_eq!(
        rs.report.to_json(),
        rp.report.to_json(),
        "{}/{label}: canonical report diverged between serial and threaded runs",
        spec.name
    );
    assert_eq!(
        ts, tp,
        "{}/{label}: trace streams diverged between serial and threaded runs",
        spec.name
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&rs.data),
        bits(&rp.data),
        "{}/{label}: gathered segment diverged between serial and threaded runs",
        spec.name
    );
    assert_eq!(rs.scalars, rp.scalars);
}

/// Every Table 2 application, every executor configuration, tiny sizes.
#[test]
fn whole_suite_is_schedule_independent_at_test_scale() {
    for spec in suite(Scale::Test) {
        assert_deterministic(&spec, &ExecConfig::sm_unopt(NPROCS), "sm_unopt");
        assert_deterministic(&spec, &ExecConfig::sm_opt(NPROCS), "sm_opt");
        assert_deterministic(&spec, &ExecConfig::mp(NPROCS), "mp");
    }
}

/// Two representative applications at the reduced benchmark scale, so
/// the invariant is exercised on runs long enough for threads to
/// genuinely interleave (jacobi: regular stencil; grav: reductions).
#[test]
fn jacobi_and_grav_are_schedule_independent_at_bench_scale() {
    for spec in suite(Scale::Bench)
        .into_iter()
        .filter(|s| s.name == "jacobi" || s.name == "grav")
    {
        assert_deterministic(&spec, &ExecConfig::sm_unopt(NPROCS), "sm_unopt");
        assert_deterministic(&spec, &ExecConfig::sm_opt(NPROCS), "sm_opt");
    }
}
