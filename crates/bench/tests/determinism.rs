//! Serial vs. threaded determinism (the sharded-executor invariant).
//!
//! Both superstep phases now run on threads: the compute phase dispatches
//! kernels over disjoint `NodeShard`s, and the resolve phase's apply
//! stage executes disjoint transfer plans concurrently (plan/apply,
//! `FGDSM_PAR`). Every charge, trace event, and memory write is either
//! shard-local or folded in plan index order, so thread scheduling must
//! not be observable. These tests pin that down end to end across the
//! whole 3-way mode matrix — fully serial, threaded resolve only, and
//! threaded resolve + compute — asserting byte-identical canonical report
//! JSON, byte-identical per-node trace streams, byte-identical profile
//! artifacts (per-superstep intervals, heatmaps, false-sharing flags and
//! the Chrome-trace export), and bit-identical gathered segment data.
//! Failures name the app, backend, mode pair, and the first diverging
//! per-node stats field.

use fgdsm_apps::{suite, AppSpec, Scale};
use fgdsm_bench::NPROCS;
use fgdsm_hpf::{execute_profiled, ExecConfig, RunResult};
use fgdsm_tempest::NodeStats;

/// Name the first differing `NodeStats` field between two nodes, if any.
fn diff_stats(a: &NodeStats, b: &NodeStats) -> Option<String> {
    macro_rules! fields {
        ($($f:ident),+ $(,)?) => {{
            $(
                if a.$f != b.$f {
                    return Some(format!("{} ({} vs {})", stringify!($f), a.$f, b.$f));
                }
            )+
        }};
    }
    fields!(
        compute_ns,
        stall_ns,
        handler_ns,
        barrier_ns,
        ctl_call_ns,
        read_misses,
        write_misses,
        msgs_sent,
        bytes_sent,
        msgs_recv,
        bytes_recv,
        pages_mapped,
        mk_writable_calls,
        implicit_writable_calls,
        implicit_invalidate_calls,
        send_range_calls,
        ready_recv_calls,
        flush_range_calls,
        blocks_pushed,
        reductions,
    );
    None
}

/// Describe where two runs diverge: the first differing per-node stats
/// field if the reports differ, otherwise raw report JSON positions.
fn explain_report_diff(a: &RunResult, b: &RunResult) -> String {
    for (n, (sa, sb)) in a.report.nodes.iter().zip(&b.report.nodes).enumerate() {
        if let Some(d) = diff_stats(sa, sb) {
            return format!("node {n} field {d}");
        }
    }
    if a.report.makespan_ns != b.report.makespan_ns {
        return format!(
            "makespan_ns ({} vs {})",
            a.report.makespan_ns, b.report.makespan_ns
        );
    }
    "report JSON differs outside per-node stats".into()
}

/// Run `spec` serially, then under each `(mode, cfg)` variant; assert
/// every variant reproduces the serial baseline in every observable
/// output, naming app/backend/mode/field on failure.
fn assert_modes_match(
    spec: &AppSpec,
    cfg: &ExecConfig,
    backend: &str,
    modes: Vec<(&str, ExecConfig)>,
) {
    let (rs, ts, cs) = execute_profiled(&spec.program, &cfg.clone().serial());
    for (mode, cfg) in modes {
        let (rp, tp, cp) = execute_profiled(&spec.program, &cfg);
        assert_eq!(
            rs.report.to_json(),
            rp.report.to_json(),
            "{}/{backend}/{mode}: report diverged from serial at {}",
            spec.name,
            explain_report_diff(&rs, &rp)
        );
        assert_eq!(
            ts, tp,
            "{}/{backend}/{mode}: trace streams diverged from the serial run",
            spec.name
        );
        assert_eq!(
            rs.report.profile_json(),
            rp.report.profile_json(),
            "{}/{backend}/{mode}: profile artifacts diverged from the serial run",
            spec.name
        );
        assert_eq!(
            cs, cp,
            "{}/{backend}/{mode}: Chrome-trace export diverged from the serial run",
            spec.name
        );
        assert_eq!(
            rs.planned, rp.planned,
            "{}/{backend}/{mode}: planned transfers diverged from the serial run",
            spec.name
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&rs.data),
            bits(&rp.data),
            "{}/{backend}/{mode}: gathered segment diverged from the serial run",
            spec.name
        );
        assert_eq!(
            rs.scalars, rp.scalars,
            "{}/{backend}/{mode}: scalars diverged from the serial run",
            spec.name
        );
    }
}

/// The original three-way matrix: fully serial, threaded resolve only,
/// threaded resolve + compute.
fn assert_deterministic(spec: &AppSpec, cfg: &ExecConfig, backend: &str) {
    assert_modes_match(
        spec,
        cfg,
        backend,
        vec![
            ("rthreads", cfg.clone().serial().resolve_threads(4)),
            ("threads", cfg.clone().threads(4)),
        ],
    );
}

/// The worker-strategy matrix: the persistent pool and the per-phase
/// `thread::scope` fallback must both reproduce the serial baseline —
/// so switching `FGDSM_POOL` can never be observable.
fn assert_pool_invariant(spec: &AppSpec, cfg: &ExecConfig, backend: &str) {
    assert_modes_match(
        spec,
        cfg,
        backend,
        vec![
            ("threads-pooled", cfg.clone().threads(4).pooled()),
            ("threads-scoped", cfg.clone().threads(4).scoped()),
        ],
    );
}

/// Every Table 2 application, every executor configuration, tiny sizes.
#[test]
fn whole_suite_is_schedule_independent_at_test_scale() {
    for spec in suite(Scale::Test) {
        assert_deterministic(&spec, &ExecConfig::sm_unopt(NPROCS), "sm_unopt");
        assert_deterministic(&spec, &ExecConfig::sm_opt(NPROCS), "sm_opt");
        assert_deterministic(&spec, &ExecConfig::mp(NPROCS), "mp");
        assert_deterministic(&spec, &ExecConfig::chan(NPROCS), "chan");
    }
}

/// The channel-backed distributed backend is `sm_opt` at the full
/// optimization level behind a wire seam, so it must not merely be
/// internally deterministic — every observable artifact (report, trace,
/// profile JSON, Chrome export, planned transfers, gathered data bits,
/// scalars) must be byte-identical to the `sm_opt` *serial baseline*,
/// in serial and threaded mode alike. This is the cross-backend pin
/// that makes the wire refactor invisible.
#[test]
fn chan_is_byte_identical_to_sm_opt() {
    for spec in suite(Scale::Test) {
        assert_modes_match(
            &spec,
            &ExecConfig::sm_opt(NPROCS),
            "chan-vs-sm_opt",
            vec![
                ("chan-serial", ExecConfig::chan(NPROCS).serial()),
                (
                    "chan-rthreads",
                    ExecConfig::chan(NPROCS).serial().resolve_threads(4),
                ),
                ("chan-threads", ExecConfig::chan(NPROCS).threads(4)),
            ],
        );
    }
}

/// The socket-backed distributed backend is the same contract as `chan`
/// carried over real sockets to spawned `fgdsm-node` processes — so the
/// identical cross-backend pin applies: every observable artifact must
/// be byte-identical to the `sm_opt` serial baseline, in serial and
/// threaded mode alike, even though the data path round-trips through
/// kernel socket buffers and separate address spaces. Skips with a
/// notice when the sandbox forbids sockets.
#[test]
fn tcp_is_byte_identical_to_sm_opt() {
    if !fgdsm_hpf::tcp_available() {
        eprintln!("notice: sandbox forbids sockets; skipping tcp_is_byte_identical_to_sm_opt");
        return;
    }
    for spec in suite(Scale::Test) {
        assert_modes_match(
            &spec,
            &ExecConfig::sm_opt(NPROCS),
            "tcp-vs-sm_opt",
            vec![
                ("tcp-serial", ExecConfig::tcp(NPROCS).serial()),
                (
                    "tcp-rthreads",
                    ExecConfig::tcp(NPROCS).serial().resolve_threads(4),
                ),
                ("tcp-threads", ExecConfig::tcp(NPROCS).threads(4)),
            ],
        );
    }
}

/// Strict wire mode (`FGDSM_WIRE=strict`) reroutes every inter-node
/// transfer through encoded envelopes on every backend, but charges and
/// counters are taken at exactly the same points — so each backend's
/// strict runs must reproduce its own fast-path serial baseline byte
/// for byte.
#[test]
fn strict_wire_matches_fast_path() {
    for spec in suite(Scale::Test) {
        for (backend, cfg) in [
            ("sm_unopt", ExecConfig::sm_unopt(NPROCS)),
            ("sm_opt", ExecConfig::sm_opt(NPROCS)),
            ("mp", ExecConfig::mp(NPROCS)),
        ] {
            assert_modes_match(
                &spec,
                &cfg,
                backend,
                vec![
                    ("strict-serial", cfg.clone().serial().strict()),
                    ("strict-threads", cfg.clone().threads(4).strict()),
                ],
            );
        }
    }
}

/// Two representative applications at the reduced benchmark scale, so
/// the invariant is exercised on runs long enough for threads to
/// genuinely interleave (jacobi: regular stencil; grav: reductions) and
/// on transfer volumes that clear the parallel-apply threshold.
#[test]
fn jacobi_and_grav_are_schedule_independent_at_bench_scale() {
    for spec in suite(Scale::Bench)
        .into_iter()
        .filter(|s| s.name == "jacobi" || s.name == "grav")
    {
        assert_deterministic(&spec, &ExecConfig::sm_unopt(NPROCS), "sm_unopt");
        assert_deterministic(&spec, &ExecConfig::sm_opt(NPROCS), "sm_opt");
    }
}

/// Three representative applications with the problem stretched by the
/// `FGDSM_SCALE`-axis factor 4 — large enough that both the compute
/// volume gate and the parallel-apply threshold are cleared, so the
/// persistent pool genuinely runs — pinned byte-identical across
/// serial/rthreads/threads AND across pool-vs-scoped worker strategies.
#[test]
fn scaled_suite_is_schedule_and_pool_independent() {
    for spec in fgdsm_apps::suite_scaled(Scale::Test, 4)
        .into_iter()
        .filter(|s| matches!(s.name, "jacobi" | "pde" | "grav"))
    {
        for (backend, cfg) in [
            ("sm_unopt", ExecConfig::sm_unopt(NPROCS)),
            ("sm_opt", ExecConfig::sm_opt(NPROCS)),
            ("mp", ExecConfig::mp(NPROCS)),
            ("chan", ExecConfig::chan(NPROCS)),
        ] {
            assert_deterministic(&spec, &cfg, backend);
            assert_pool_invariant(&spec, &cfg, backend);
        }
    }
}
