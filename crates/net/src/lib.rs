//! Socket-backed multi-process transport: the first time the repro
//! leaves one address space.
//!
//! [`SocketTransport`] implements the wire seam's
//! [`WireTransport`] over real OS processes: each node is a spawned
//! `fgdsm-node` worker that owns a mirror of its shard address space,
//! decodes every [`WireMsg`] with the paranoid decoder, applies the
//! payload into its local store, and replies with frames re-encoded
//! *from that store* — so data genuinely round-trips through another
//! process's memory, byte-identically (PR 7's decode→re-encode identity,
//! now across a kernel boundary).
//!
//! Transport choice: TCP over loopback by default, Unix-domain sockets
//! where available (`FGDSM_NET=tcp|uds` forces one; auto-detection falls
//! back to UDS when TCP binds are forbidden). All conversation runs over
//! the length-prefixed framing layer (`write_frame`/[`FrameDecoder`])
//! with [`CtrlMsg`] control frames for handshake
//! (`Hello`/`HelloAck` with shard geometry), batch markers, and orderly
//! teardown (`Bye`/`ByeStats`).
//!
//! Failure semantics: every recv carries a deadline
//! (`FGDSM_NET_TIMEOUT_MS`, [`fgdsm_protocol::net_timeout`]); a closed
//! connection is a typed `WireError::PeerGone`, a silent one a typed
//! `WireError::Timeout` — the coordinator never hangs on a dead or stuck
//! node. Transient `EINTR`s are retried a bounded number of times. A
//! frame the node *rejects* (decode failure, oversized length prefix)
//! comes back as a `CtrlMsg::Err` and fails the run loudly.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use fgdsm_protocol::wire::{
    net_timeout, write_frame, CtrlMsg, FrameDecoder, RemoteReport, WireError, WireMsg,
    WireTransport, WIRE_VERSION,
};
use fgdsm_tempest::metrics::{self, MetricsRegistry};

/// Bounded retry budget for transient (`EINTR`) I/O errors.
const MAX_TRANSIENT_RETRIES: u32 = 100;
/// How long `shutdown` waits for a child to exit after `Bye` before
/// killing it.
const CHILD_EXIT_DEADLINE: Duration = Duration::from_secs(3);

// ----------------------------------------------------------------------
// Transport selection and probing
// ----------------------------------------------------------------------

/// Which socket family carries the frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// TCP over 127.0.0.1.
    Tcp,
    /// Unix-domain sockets (where the platform has them).
    Uds,
}

impl NetKind {
    pub fn name(self) -> &'static str {
        match self {
            NetKind::Tcp => "tcp",
            NetKind::Uds => "uds",
        }
    }
}

/// Can this process bind a socket of `kind`? (Sandboxes may forbid one
/// or both families.)
pub fn probe(kind: NetKind) -> bool {
    match kind {
        NetKind::Tcp => TcpListener::bind(("127.0.0.1", 0)).is_ok(),
        #[cfg(unix)]
        NetKind::Uds => {
            let path = fresh_uds_path();
            let ok = UnixListener::bind(&path).is_ok();
            let _ = std::fs::remove_file(&path);
            ok
        }
        #[cfg(not(unix))]
        NetKind::Uds => false,
    }
}

/// The socket family the environment allows, honoring `FGDSM_NET`
/// (`tcp`/`uds`); unset means "TCP, falling back to UDS". `None` when
/// the sandbox forbids sockets entirely — callers skip with a notice.
pub fn available_kind() -> Option<NetKind> {
    match std::env::var("FGDSM_NET").ok().as_deref() {
        Some("tcp") => probe(NetKind::Tcp).then_some(NetKind::Tcp),
        Some("uds") => probe(NetKind::Uds).then_some(NetKind::Uds),
        Some(other) => panic!("FGDSM_NET={other}: expected `tcp` or `uds`"),
        None => {
            if probe(NetKind::Tcp) {
                Some(NetKind::Tcp)
            } else if probe(NetKind::Uds) {
                Some(NetKind::Uds)
            } else {
                None
            }
        }
    }
}

fn fresh_uds_path() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "fgdsm-{}-{}.sock",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

// ----------------------------------------------------------------------
// Streams and listeners (TCP / UDS unified)
// ----------------------------------------------------------------------

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn set_timeouts(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }

    fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.write_all(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write_all(buf),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(kind: NetKind) -> io::Result<Listener> {
        match kind {
            NetKind::Tcp => Ok(Listener::Tcp(TcpListener::bind(("127.0.0.1", 0))?)),
            #[cfg(unix)]
            NetKind::Uds => {
                let path = fresh_uds_path();
                Ok(Listener::Unix(UnixListener::bind(&path)?, path))
            }
            #[cfg(not(unix))]
            NetKind::Uds => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets unavailable on this platform",
            )),
        }
    }

    /// The address string handed to children via `FGDSM_NODE_ADDR`.
    fn addr_string(&self) -> io::Result<String> {
        match self {
            Listener::Tcp(l) => Ok(format!("tcp:{}", l.local_addr()?)),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(format!("uds:{}", path.display())),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    fn try_accept(&self) -> io::Result<Option<Stream>> {
        let r = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match r {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn connect(addr: &str) -> io::Result<Stream> {
    if let Some(a) = addr.strip_prefix("tcp:") {
        return Ok(Stream::Tcp(TcpStream::connect(a)?));
    }
    #[cfg(unix)]
    if let Some(p) = addr.strip_prefix("uds:") {
        return Ok(Stream::Unix(UnixStream::connect(p)?));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("bad FGDSM_NODE_ADDR {addr:?} (want tcp:<addr> or uds:<path>)"),
    ))
}

// ----------------------------------------------------------------------
// Framed I/O with typed failure mapping
// ----------------------------------------------------------------------

fn map_io(peer: u32, e: &io::Error) -> WireError {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => WireError::Timeout(peer),
        _ => WireError::PeerGone(peer),
    }
}

/// One framed connection: the stream plus its incremental reassembly
/// state.
struct Link {
    stream: Stream,
    dec: FrameDecoder,
}

impl Link {
    fn new(stream: Stream) -> Self {
        Link {
            stream,
            dec: FrameDecoder::new(),
        }
    }

    fn send(&mut self, bytes: &[u8], peer: u32) -> Result<(), WireError> {
        self.stream
            .write_all_bytes(bytes)
            .map_err(|e| map_io(peer, &e))
    }

    /// Read the next complete frame. A 0-byte read (EOF) is
    /// [`WireError::PeerGone`]; a recv deadline hit is
    /// [`WireError::Timeout`]; an oversized length prefix surfaces as
    /// [`WireError::FrameTooBig`] before any allocation.
    fn recv_frame(&mut self, peer: u32) -> Result<Vec<u8>, WireError> {
        let mut retries = 0u32;
        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(f) = self.dec.next_frame()? {
                return Ok(f);
            }
            match self.stream.read_some(&mut buf) {
                Ok(0) => return Err(WireError::PeerGone(peer)),
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    retries += 1;
                    if retries > MAX_TRANSIENT_RETRIES {
                        return Err(WireError::PeerGone(peer));
                    }
                }
                Err(e) => return Err(map_io(peer, &e)),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Coordinator side: SocketTransport
// ----------------------------------------------------------------------

/// Shard geometry shipped to every node in `HelloAck`, sizing its
/// mirror store.
#[derive(Clone, Copy, Debug)]
pub struct NetGeometry {
    pub nprocs: usize,
    /// Words per coherence block.
    pub wpb: u32,
    /// Segment size in words (every node's window spans the segment).
    pub seg_words: u64,
}

/// A deliberate node-process misbehavior, armed on one child via
/// `FGDSM_NODE_FAULT` — the fault-tolerance tests' way of killing or
/// wedging a node mid-superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// Exit cleanly (EOF on the coordinator's next read) after serving
    /// this many batches.
    ExitAfterBatches(u32),
    /// Stop replying (coordinator recv deadline fires) after serving
    /// this many batches.
    WedgeAfterBatches(u32),
}

impl NodeFault {
    fn env_str(&self) -> String {
        match self {
            NodeFault::ExitAfterBatches(n) => format!("exit:{n}"),
            NodeFault::WedgeAfterBatches(n) => format!("wedge:{n}"),
        }
    }

    fn parse(s: &str) -> Option<NodeFault> {
        let (kind, n) = s.split_once(':')?;
        let n = n.parse().ok()?;
        match kind {
            "exit" => Some(NodeFault::ExitAfterBatches(n)),
            "wedge" => Some(NodeFault::WedgeAfterBatches(n)),
            _ => None,
        }
    }
}

/// Knobs for [`SocketTransport::spawn`].
#[derive(Clone, Debug)]
pub struct SocketOpts {
    /// Per-recv deadline (default `FGDSM_NET_TIMEOUT_MS`, 5000 ms).
    pub timeout: Duration,
    /// Fault injection: corrupt the length prefix of the first routed
    /// data frame to an oversized value — the node must reject it via
    /// the framing cap, never allocate for it.
    pub corrupt_frame_len: bool,
    /// Fault injection: arm one node with a [`NodeFault`].
    pub node_fault: Option<(u32, NodeFault)>,
    /// Enable wall-clock telemetry in the workers: each child is spawned
    /// with `FGDSM_METRICS` set explicitly (1/0, never inherited), and a
    /// metrics-enabled node ships its registry home inside `ByeStats`.
    pub metrics: bool,
}

impl Default for SocketOpts {
    fn default() -> Self {
        SocketOpts {
            timeout: net_timeout(),
            corrupt_frame_len: false,
            node_fault: None,
            metrics: false,
        }
    }
}

/// The `tcp` backend's transport: one spawned `fgdsm-node` process per
/// node, linked over TCP loopback or Unix-domain sockets.
pub struct SocketTransport {
    kind: NetKind,
    links: Vec<Option<Link>>,
    children: Vec<Option<Child>>,
    corrupt_len_pending: bool,
    /// Sum of the nodes' `ByeStats` collected at orderly teardown.
    remote_frames: u64,
    remote_payload_bytes: u64,
    got_bye_stats: usize,
    /// Per-node teardown reports (counters + optional metrics blob),
    /// drained by [`WireTransport::finish`].
    reports: Vec<RemoteReport>,
}

impl SocketTransport {
    /// Spawn `geom.nprocs` node processes, accept their connections and
    /// complete the `Hello`/`HelloAck` handshake. Fails (typed
    /// `io::Error`) when the sandbox forbids sockets, the node binary
    /// cannot be found or started, or a child dies before connecting.
    pub fn spawn(geom: NetGeometry, opts: SocketOpts) -> io::Result<SocketTransport> {
        let kind = available_kind().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "sandbox forbids sockets (TCP and UDS binds both failed)",
            )
        })?;
        let listener = Listener::bind(kind)?;
        let addr = listener.addr_string()?;
        listener.set_nonblocking(true)?;

        let mut children: Vec<Option<Child>> = Vec::with_capacity(geom.nprocs);
        for node in 0..geom.nprocs {
            let mut cmd = node_command();
            cmd.env("FGDSM_NODE_ID", node.to_string())
                .env("FGDSM_NODE_ADDR", &addr)
                .env("FGDSM_NET_TIMEOUT_MS", opts.timeout.as_millis().to_string())
                .env("FGDSM_METRICS", if opts.metrics { "1" } else { "0" })
                .env_remove("FGDSM_NODE_FAULT")
                .stdin(Stdio::null())
                .stdout(Stdio::null());
            if let Some((fault_node, fault)) = opts.node_fault {
                if fault_node == node as u32 {
                    cmd.env("FGDSM_NODE_FAULT", fault.env_str());
                }
            }
            children.push(Some(cmd.spawn()?));
        }

        // Accept + handshake with a startup deadline. Generous: the
        // cargo-run fallback may have to build the node binary first.
        let deadline = Instant::now() + opts.timeout.max(Duration::from_secs(5)) * 12;
        let mut links: Vec<Option<Link>> = (0..geom.nprocs).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < geom.nprocs {
            if Instant::now() > deadline {
                kill_children(&mut children);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "{connected}/{} nodes connected before deadline",
                        geom.nprocs
                    ),
                ));
            }
            // A child that died before connecting fails startup early.
            for (i, c) in children.iter_mut().enumerate() {
                if let Some(child) = c.as_mut() {
                    if links[i].is_none() {
                        if let Ok(Some(status)) = child.try_wait() {
                            kill_children(&mut children);
                            return Err(io::Error::other(format!(
                                "node {i} exited before connecting: {status}"
                            )));
                        }
                    }
                }
            }
            let Some(stream) = listener.try_accept()? else {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            };
            stream.set_timeouts(Some(opts.timeout))?;
            let mut link = Link::new(stream);
            let hello = link
                .recv_frame(u32::MAX)
                .map_err(|e| io::Error::other(format!("handshake recv: {e}")))?;
            let node = match CtrlMsg::from_bytes(&hello) {
                Ok(CtrlMsg::Hello { node, version }) if version == WIRE_VERSION => node as usize,
                Ok(other) => {
                    return Err(io::Error::other(format!(
                        "handshake: expected Hello, got {other:?}"
                    )))
                }
                Err(e) => return Err(io::Error::other(format!("handshake decode: {e}"))),
            };
            if node >= geom.nprocs || links[node].is_some() {
                return Err(io::Error::other(format!("handshake: bad node id {node}")));
            }
            let ack = CtrlMsg::HelloAck {
                nprocs: geom.nprocs as u32,
                wpb: geom.wpb,
                seg_words: geom.seg_words,
            };
            let mut out = Vec::new();
            write_frame(&mut out, &ack.to_bytes());
            link.send(&out, node as u32)
                .map_err(|e| io::Error::other(format!("handshake ack: {e}")))?;
            links[node] = Some(link);
            connected += 1;
        }

        Ok(SocketTransport {
            kind,
            links,
            children,
            corrupt_len_pending: opts.corrupt_frame_len,
            remote_frames: 0,
            remote_payload_bytes: 0,
            got_bye_stats: 0,
            reports: Vec::new(),
        })
    }

    /// Which socket family the transport settled on.
    pub fn net_kind(&self) -> NetKind {
        self.kind
    }

    /// `(frames, payload bytes)` summed over the nodes' `ByeStats`, and
    /// how many nodes reported. Populated by [`SocketTransport::shutdown`].
    pub fn remote_stats(&self) -> (u64, u64, usize) {
        (
            self.remote_frames,
            self.remote_payload_bytes,
            self.got_bye_stats,
        )
    }

    /// Orderly teardown: `Bye` to every live node, collect `ByeStats`,
    /// close the links, then wait for the children (killing any that
    /// outlive [`CHILD_EXIT_DEADLINE`] — a wedged node must not leak).
    /// Idempotent; also runs on `Drop`, including during a panic unwind,
    /// where errors are swallowed so teardown never masks the original
    /// failure.
    pub fn shutdown(&mut self) {
        let mut bye = Vec::new();
        write_frame(&mut bye, &CtrlMsg::Bye.to_bytes());
        for (i, slot) in self.links.iter_mut().enumerate() {
            let Some(mut link) = slot.take() else {
                continue;
            };
            if link.send(&bye, i as u32).is_ok() {
                if let Ok(frame) = link.recv_frame(i as u32) {
                    if let Ok(CtrlMsg::ByeStats {
                        frames,
                        payload_bytes,
                        metrics,
                    }) = CtrlMsg::from_bytes(&frame)
                    {
                        self.remote_frames += frames;
                        self.remote_payload_bytes += payload_bytes;
                        self.got_bye_stats += 1;
                        self.reports.push(RemoteReport {
                            node: i as u32,
                            frames,
                            payload_bytes,
                            metrics,
                        });
                    }
                }
            }
            link.stream.shutdown();
        }
        let deadline = Instant::now() + CHILD_EXIT_DEADLINE;
        loop {
            let mut alive = false;
            for c in self.children.iter_mut() {
                if let Some(child) = c.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => *c = None,
                        Ok(None) => alive = true,
                        Err(_) => *c = None,
                    }
                }
            }
            if !alive || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        kill_children(&mut self.children);
    }
}

fn kill_children(children: &mut [Option<Child>]) {
    for c in children.iter_mut() {
        if let Some(child) = c.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        *c = None;
    }
}

impl WireTransport for SocketTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn route(&mut self, dst: usize, frames: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, WireError> {
        if frames.is_empty() {
            return Ok(frames);
        }
        let peer = dst as u32;
        let link = self
            .links
            .get_mut(dst)
            .and_then(Option::as_mut)
            .ok_or(WireError::PeerGone(peer))?;
        let n = frames.len() as u32;
        let mut out = Vec::new();
        write_frame(&mut out, &CtrlMsg::Batch { n }.to_bytes());
        let first_data_prefix = out.len();
        for f in &frames {
            write_frame(&mut out, f);
        }
        if self.corrupt_len_pending {
            // One-shot injection: an oversized length prefix on the first
            // data frame. The node's framing cap must reject it before
            // allocating; the run fails loudly via the Err reply below.
            self.corrupt_len_pending = false;
            out[first_data_prefix..first_data_prefix + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        link.send(&out, peer)?;

        let ctrl_frame = link.recv_frame(peer)?;
        let reply = match CtrlMsg::from_bytes(&ctrl_frame) {
            Ok(m) => m,
            Err(e) => panic!("wire: bad control frame from node {dst}: {e}"),
        };
        match reply {
            CtrlMsg::Batch { n: rn } => {
                if rn != n {
                    panic!("wire: node {dst} returned {rn} frames for a batch of {n}");
                }
                let mut back = Vec::with_capacity(rn as usize);
                for _ in 0..rn {
                    back.push(link.recv_frame(peer)?);
                }
                Ok(back)
            }
            CtrlMsg::Err { detail } => {
                self.links[dst] = None;
                panic!("wire: envelope decode failed in transit: {detail}");
            }
            other => panic!("wire: node {dst}: unexpected control reply {other:?}"),
        }
    }

    /// Orderly teardown, then hand the per-node `ByeStats` reports to
    /// the wire seam for double-entry reconciliation and metric merging.
    fn finish(&mut self) -> Vec<RemoteReport> {
        self.shutdown();
        std::mem::take(&mut self.reports)
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ----------------------------------------------------------------------
// Node-binary discovery
// ----------------------------------------------------------------------

/// A `Command` that starts the `fgdsm-node` worker: `FGDSM_NODE_BIN`
/// override, else the binary next to the running test/bench executable
/// (`target/<profile>/fgdsm-node`), else `cargo run -p fgdsm --bin
/// fgdsm-node` as a last resort.
pub fn node_command() -> Command {
    if let Ok(p) = std::env::var("FGDSM_NODE_BIN") {
        return Command::new(p);
    }
    if let Some(p) = find_node_bin() {
        return Command::new(p);
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.args(["run", "--quiet", "-p", "fgdsm", "--bin", "fgdsm-node"]);
    cmd
}

fn find_node_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join(format!("fgdsm-node{}", std::env::consts::EXE_SUFFIX));
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

// ----------------------------------------------------------------------
// Node side: the worker process serve loop
// ----------------------------------------------------------------------

/// Apply `msg`'s payload into the node's mirror store at the addresses
/// the envelope describes, growing the store if the geometry undersold
/// it, and return the word addresses written (in payload order).
fn apply_msg(mirror: &mut Vec<u64>, msg: &WireMsg, wpb: usize) -> Vec<usize> {
    let addrs: Vec<usize> = match msg {
        WireMsg::Push {
            start_block, words, ..
        }
        | WireMsg::Flush {
            start_block, words, ..
        } => {
            let s = *start_block as usize * wpb;
            (s..s + words.len()).collect()
        }
        WireMsg::Copy {
            start_word, words, ..
        } => {
            let s = *start_word as usize;
            (s..s + words.len()).collect()
        }
        WireMsg::Diff { block, mask, .. } => {
            let s = *block as usize * wpb;
            (0..64)
                .filter(|bit| mask & (1u64 << bit) != 0)
                .map(|bit| s + bit as usize)
                .collect()
        }
        WireMsg::Strided {
            base,
            run_len,
            stride,
            count,
            ..
        } => (0..*count as usize)
            .flat_map(|i| {
                let s = *base as usize + i * *stride as usize;
                s..s + *run_len as usize
            })
            .collect(),
    };
    if let Some(&max) = addrs.iter().max() {
        if max >= mirror.len() {
            mirror.resize(max + 1, 0);
        }
    }
    for (&a, &w) in addrs.iter().zip(msg.words()) {
        mirror[a] = w;
    }
    addrs
}

/// Rebuild the reply envelope by reading the payload back *from the
/// mirror* — the shard-ownership property: what the coordinator gets
/// back is what the node's memory now holds, not an echo of the bytes.
fn reencode_from_mirror(mirror: &[u64], msg: WireMsg, addrs: &[usize]) -> WireMsg {
    let words: Vec<u64> = addrs.iter().map(|&a| mirror[a]).collect();
    match msg {
        WireMsg::Push {
            hdr,
            start_block,
            n_blocks,
            ..
        } => WireMsg::Push {
            hdr,
            start_block,
            n_blocks,
            words,
        },
        WireMsg::Flush {
            hdr,
            start_block,
            n_blocks,
            ..
        } => WireMsg::Flush {
            hdr,
            start_block,
            n_blocks,
            words,
        },
        WireMsg::Copy {
            hdr, start_word, ..
        } => WireMsg::Copy {
            hdr,
            start_word,
            words,
        },
        WireMsg::Diff {
            hdr, block, mask, ..
        } => WireMsg::Diff {
            hdr,
            block,
            mask,
            words,
        },
        WireMsg::Strided {
            hdr,
            base,
            run_len,
            stride,
            count,
            ..
        } => WireMsg::Strided {
            hdr,
            base,
            run_len,
            stride,
            count,
            words,
        },
    }
}

/// The `fgdsm-node` worker loop: connect back to the coordinator,
/// introduce ourselves, then serve batches until `Bye` (or the
/// coordinator disappears). Every decode failure is reported as a
/// `CtrlMsg::Err` before exiting — the coordinator turns it into a loud
/// run failure.
pub fn serve(node: u32, addr: &str) -> Result<(), String> {
    let stream = connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    // Idle deadline: generous (the coordinator computes between
    // supersteps), but bounded so an orphaned node never outlives a
    // coordinator killed without cleanup.
    let idle = net_timeout().max(Duration::from_secs(6)) * 10;
    stream
        .set_timeouts(Some(idle))
        .map_err(|e| format!("set timeouts: {e}"))?;
    let mut link = Link::new(stream);

    let mut hello = Vec::new();
    write_frame(
        &mut hello,
        &CtrlMsg::Hello {
            node,
            version: WIRE_VERSION,
        }
        .to_bytes(),
    );
    link.send(&hello, node).map_err(|e| format!("hello: {e}"))?;
    let ack = link
        .recv_frame(node)
        .map_err(|e| format!("hello ack: {e}"))?;
    let (wpb, seg_words) = match CtrlMsg::from_bytes(&ack) {
        Ok(CtrlMsg::HelloAck { wpb, seg_words, .. }) => (wpb as usize, seg_words as usize),
        Ok(other) => return Err(format!("expected HelloAck, got {other:?}")),
        Err(e) => return Err(format!("hello ack decode: {e}")),
    };

    let fault = std::env::var("FGDSM_NODE_FAULT")
        .ok()
        .and_then(|s| NodeFault::parse(&s));
    let mut mirror = vec![0u64; seg_words];
    let mut frames_served = 0u64;
    let mut payload_bytes = 0u64;
    let mut batches = 0u32;
    // Wall-clock telemetry, on only when the coordinator armed
    // `FGDSM_METRICS` for this child: per-class recv (frame in hand →
    // decoded), apply (payload → mirror), and re-encode histograms plus
    // the double-entry frame/payload counters, shipped home in ByeStats.
    let mut reg: Option<MetricsRegistry> = metrics::env_enabled().then(MetricsRegistry::new);

    let send_err = |link: &mut Link, detail: String| {
        let mut out = Vec::new();
        write_frame(&mut out, &CtrlMsg::Err { detail }.to_bytes());
        let _ = link.send(&out, node);
    };

    loop {
        let ctrl_frame = match link.recv_frame(node) {
            Ok(f) => f,
            // Coordinator gone or idle too long: exit quietly, we are
            // the orphan-prevention backstop, not the error reporter.
            Err(_) => return Ok(()),
        };
        let ctrl = match CtrlMsg::from_bytes(&ctrl_frame) {
            Ok(c) => c,
            Err(e) => {
                send_err(&mut link, format!("node {node}: bad control frame: {e}"));
                return Err(format!("bad control frame: {e}"));
            }
        };
        match ctrl {
            CtrlMsg::Batch { n } => {
                batches += 1;
                match fault {
                    Some(NodeFault::ExitAfterBatches(k)) if batches > k => {
                        // Simulated crash: vanish mid-superstep (EOF).
                        std::process::exit(0);
                    }
                    Some(NodeFault::WedgeAfterBatches(k)) if batches > k => {
                        // Simulated hang: stop replying; the coordinator's
                        // recv deadline must fire. Bounded so the process
                        // cannot leak past the run.
                        std::thread::sleep(Duration::from_secs(600));
                        std::process::exit(0);
                    }
                    _ => {}
                }
                let mut reply = Vec::new();
                write_frame(&mut reply, &CtrlMsg::Batch { n }.to_bytes());
                for _ in 0..n {
                    let frame = match link.recv_frame(node) {
                        Ok(f) => f,
                        Err(e @ WireError::FrameTooBig(_)) => {
                            send_err(&mut link, format!("node {node}: {e}"));
                            return Err(e.to_string());
                        }
                        Err(_) => return Ok(()),
                    };
                    let t_recv = reg.as_ref().map(|_| Instant::now());
                    let msg = match WireMsg::from_bytes(&frame) {
                        Ok(m) => m,
                        Err(e) => {
                            send_err(&mut link, format!("node {node}: {e}"));
                            return Err(e.to_string());
                        }
                    };
                    let class = metrics::class_name(msg.kind());
                    if let (Some(reg), Some(t0)) = (reg.as_mut(), t_recv) {
                        reg.record_ns(&format!("recv.{class}"), t0.elapsed().as_nanos() as u64);
                        reg.counter_add(&format!("frames.{class}"), 1);
                        reg.counter_add(&format!("payload_bytes.{class}"), msg.payload_bytes());
                    }
                    let t_apply = reg.as_ref().map(|_| Instant::now());
                    let addrs = apply_msg(&mut mirror, &msg, wpb);
                    if let (Some(reg), Some(t0)) = (reg.as_mut(), t_apply) {
                        reg.record_ns(&format!("apply.{class}"), t0.elapsed().as_nanos() as u64);
                    }
                    let t_re = reg.as_ref().map(|_| Instant::now());
                    let out = reencode_from_mirror(&mirror, msg, &addrs);
                    frames_served += 1;
                    payload_bytes += out.payload_bytes();
                    write_frame(&mut reply, &out.to_bytes());
                    if let (Some(reg), Some(t0)) = (reg.as_mut(), t_re) {
                        reg.record_ns(&format!("reencode.{class}"), t0.elapsed().as_nanos() as u64);
                    }
                }
                if link.send(&reply, node).is_err() {
                    return Ok(());
                }
            }
            CtrlMsg::Bye => {
                let mut out = Vec::new();
                write_frame(
                    &mut out,
                    &CtrlMsg::ByeStats {
                        frames: frames_served,
                        payload_bytes,
                        metrics: reg.take().map(|r| r.to_bytes()).unwrap_or_default(),
                    }
                    .to_bytes(),
                );
                let _ = link.send(&out, node);
                return Ok(());
            }
            other => {
                send_err(&mut link, format!("node {node}: unexpected {other:?}"));
                return Err(format!("unexpected control frame {other:?}"));
            }
        }
    }
}

/// Entry point for the `fgdsm-node` binary: node id and coordinator
/// address from the environment.
pub fn serve_from_env() -> Result<(), String> {
    let node = std::env::var("FGDSM_NODE_ID")
        .map_err(|_| "FGDSM_NODE_ID not set".to_string())?
        .parse::<u32>()
        .map_err(|e| format!("FGDSM_NODE_ID: {e}"))?;
    let addr = std::env::var("FGDSM_NODE_ADDR").map_err(|_| "FGDSM_NODE_ADDR not set")?;
    serve(node, &addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdsm_protocol::wire::WireHeader;

    #[test]
    fn node_fault_env_round_trips() {
        for f in [
            NodeFault::ExitAfterBatches(3),
            NodeFault::WedgeAfterBatches(0),
        ] {
            assert_eq!(NodeFault::parse(&f.env_str()), Some(f));
        }
        assert_eq!(NodeFault::parse("garbage"), None);
    }

    #[test]
    fn mirror_apply_reencode_is_the_identity_per_message() {
        let mut mirror = vec![0u64; 64];
        let msgs = vec![
            WireMsg::Push {
                hdr: WireHeader::for_blocks(0, 1, (0, 0), 7, 2, 2),
                start_block: 2,
                n_blocks: 2,
                words: vec![11, 22, 33, 44],
            },
            WireMsg::Copy {
                hdr: WireHeader::for_blocks(1, 0, (0, 0), u32::MAX, 0, 1),
                start_word: 60,
                // Past the declared segment: the mirror must grow.
                words: vec![1, 2, 3, 4, 5, 6, 7, 8],
            },
            WireMsg::Diff {
                hdr: WireHeader::for_blocks(0, 1, (0, 0), u32::MAX, 3, 1),
                block: 3,
                mask: 0b1011,
                words: vec![9, 8, 7],
            },
            WireMsg::Strided {
                hdr: WireHeader::for_blocks(1, 0, (0, 0), u32::MAX, 0, 1),
                base: 4,
                run_len: 2,
                stride: 8,
                count: 3,
                words: vec![1, 2, 3, 4, 5, 6],
            },
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            let addrs = apply_msg(&mut mirror, &msg, 4);
            let back = reencode_from_mirror(&mirror, msg, &addrs);
            assert_eq!(back.to_bytes(), bytes, "kind {}", back.kind());
        }
        // The Push actually landed in the store at block*wpb.
        assert_eq!(&mirror[8..12], &[11, 22, 33, 44]);
    }
}
