//! # fgdsm-section: an "omega-lite" array-section algebra
//!
//! The paper (Chandra & Larus, PPoPP 1997, §4.1) uses the Omega library to
//! compute, for every distributed array referenced in a parallel loop, the
//! *non-owner-read* and *non-owner-write* sets — the array sections a
//! processor touches but does not own. Omega emits C code fragments that are
//! invoked at run time with the values of symbolic variables to produce the
//! concrete bounds of each access set.
//!
//! This crate reproduces exactly the subset of that machinery the paper
//! relies on:
//!
//! * [`Affine`] — affine expressions over named symbolic variables
//!   (processor id, problem sizes, time-loop indices such as `lu`'s pivot
//!   column `k`);
//! * [`SymRange`] / [`SymSection`] — strided rectangular sections with
//!   symbolic bounds, the compile-time artifact the planner builds once per
//!   loop;
//! * [`Range`] / [`Section`] — concrete integer sections obtained by
//!   evaluating the symbolic form under an [`Env`], supporting
//!   intersection, difference, and cardinality (the run-time half of
//!   Omega's generated code);
//! * [`layout`] — column-major (Fortran) linearization of sections into
//!   contiguous or 2-D strided virtual-address ranges, as required by the
//!   paper's restriction to "array sections that form contiguous virtual
//!   addresses" plus "two-dimensional sections, represented as contiguous
//!   ranges separated by a fixed stride";
//! * [`blocks`] — the multi-word-cache-block subsetting of §3/§4.2
//!   (`shmem_limits`): shrink a byte range to whole blocks strictly inside
//!   it, leaving boundary blocks to the default coherence protocol.

pub mod affine;
pub mod blocks;
pub mod layout;
pub mod range;
pub mod section;

pub use affine::{Affine, Env, Var};
pub use blocks::{block_subset, BlockSubset};
pub use layout::{ColumnMajor, LinearRanges, StridedRange};
pub use range::{Range, SymRange};
pub use section::{Section, SymSection};
