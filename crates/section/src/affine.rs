//! Affine expressions over named symbolic variables.
//!
//! The access analysis in `fgdsm-hpf` is parametric in the processor id and
//! in loop symbolics (e.g. the pivot column `k` in `lu`). Bounds of array
//! sections are therefore affine expressions `c0 + c1*v1 + ... + cn*vn`
//! evaluated at run time under an [`Env`], mirroring how the Omega library
//! "keeps access sets parametric with respect to processor number" (§4.1).

use std::collections::BTreeMap;
use std::fmt;

/// A symbolic variable, interned by name.
///
/// Variables are small and cheap to copy; two variables with the same name
/// are the same variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub &'static str);

impl Var {
    /// Conventional variable for the executing processor's id.
    pub const P: Var = Var("p");
    /// Conventional variable for the number of processors.
    pub const NPROCS: Var = Var("P");
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A run-time binding of symbolic variables to integer values.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Env {
    bindings: BTreeMap<Var, i64>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `value`, returning `self` for chaining.
    pub fn bind(mut self, var: Var, value: i64) -> Self {
        self.bindings.insert(var, value);
        self
    }

    /// Bind `var` to `value` in place.
    pub fn set(&mut self, var: Var, value: i64) {
        self.bindings.insert(var, value);
    }

    /// Look up `var`.
    pub fn get(&self, var: Var) -> Option<i64> {
        self.bindings.get(&var).copied()
    }

    /// Iterate over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.bindings.iter().map(|(v, x)| (*v, *x))
    }
}

/// An affine expression `constant + Σ coef_i · var_i`.
///
/// Supports the arithmetic the section algebra needs (addition, subtraction,
/// scaling) and evaluation under an [`Env`]. Terms with zero coefficients
/// are kept normalized away so that structural equality is semantic
/// equality.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Affine {
    constant: i64,
    terms: BTreeMap<Var, i64>,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        Affine {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// The expression consisting of the single variable `v`.
    pub fn var(v: Var) -> Self {
        Affine::constant(0).plus_term(v, 1)
    }

    /// The zero expression.
    pub fn zero() -> Self {
        Affine::constant(0)
    }

    /// Returns `self + coef·v`.
    pub fn plus_term(mut self, v: Var, coef: i64) -> Self {
        let entry = self.terms.entry(v).or_insert(0);
        *entry += coef;
        if *entry == 0 {
            self.terms.remove(&v);
        }
        self
    }

    /// Returns `self + c`.
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for (v, c) in &other.terms {
            out = out.plus_term(*v, *c);
        }
        out
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Returns `k · self`.
    pub fn scale(&self, k: i64) -> Affine {
        let mut out = Affine::constant(self.constant * k);
        for (v, c) in &self.terms {
            out = out.plus_term(*v, c * k);
        }
        out
    }

    /// True if the expression contains no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if the expression is constant.
    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.constant)
    }

    /// Evaluate under `env`.
    ///
    /// # Panics
    /// Panics if a variable in the expression is unbound; this indicates a
    /// planner bug (every symbolic a plan mentions must be bound before the
    /// plan executes).
    pub fn eval(&self, env: &Env) -> i64 {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            let x = env
                .get(*v)
                .unwrap_or_else(|| panic!("unbound symbolic variable `{v}` in affine expression"));
            acc += c * x;
        }
        acc
    }

    /// The variables appearing in the expression.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.keys().copied()
    }
}

impl From<i64> for Affine {
    fn from(c: i64) -> Self {
        Affine::constant(c)
    }
}

impl From<Var> for Affine {
    fn from(v: Var) -> Self {
        Affine::var(v)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.constant != 0 || self.terms.is_empty() {
            write!(f, "{}", self.constant)?;
            first = false;
        }
        for (v, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, "+{v}")?;
                } else {
                    write!(f, "+{c}{v}")?;
                }
            } else if *c == -1 {
                write!(f, "-{v}")?;
            } else {
                write!(f, "{c}{v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_eval() {
        assert_eq!(Affine::constant(7).eval(&Env::new()), 7);
    }

    #[test]
    fn var_eval() {
        let env = Env::new().bind(Var::P, 3);
        assert_eq!(Affine::var(Var::P).eval(&env), 3);
    }

    #[test]
    fn add_sub_scale() {
        let k = Var("k");
        let e = Affine::var(k).scale(2).plus_const(5); // 2k + 5
        let f = Affine::var(k).plus_const(1); // k + 1
        let g = e.sub(&f); // k + 4
        let env = Env::new().bind(k, 10);
        assert_eq!(g.eval(&env), 14);
        assert_eq!(e.add(&f).eval(&env), 25 + 11);
    }

    #[test]
    fn zero_coefficients_normalize() {
        let k = Var("k");
        let e = Affine::var(k).plus_term(k, -1);
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(0));
        assert_eq!(e, Affine::zero());
    }

    #[test]
    #[should_panic(expected = "unbound symbolic variable")]
    fn unbound_var_panics() {
        Affine::var(Var("nope")).eval(&Env::new());
    }

    #[test]
    fn display_forms() {
        let k = Var("k");
        assert_eq!(Affine::constant(3).to_string(), "3");
        assert_eq!(Affine::var(k).to_string(), "k");
        assert_eq!(Affine::var(k).scale(-2).plus_const(1).to_string(), "1-2k");
    }

    #[test]
    fn from_impls() {
        let a: Affine = 4.into();
        assert_eq!(a.as_constant(), Some(4));
        let b: Affine = Var::P.into();
        assert_eq!(b.eval(&Env::new().bind(Var::P, 2)), 2);
    }
}
