//! Column-major (Fortran) linearization of sections into virtual-address
//! ranges.
//!
//! The paper restricts compiler-controlled optimization to "array sections
//! that can be shown, at compile-time, to form contiguous virtual
//! addresses", plus "two-dimensional sections, represented as contiguous
//! ranges separated by a fixed stride" (§4.1). This module classifies a
//! concrete [`Section`] over a given array layout into exactly those shapes
//! and produces element-offset ranges that the planner then converts into
//! block lists.

use crate::section::Section;

/// Column-major layout of a multi-dimensional array: the *first* dimension
/// is contiguous (Fortran). Extents are per-dimension sizes; dimension `d`
/// has stride `extents[0] * … * extents[d-1]` elements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnMajor {
    extents: Vec<usize>,
    strides: Vec<usize>,
}

impl ColumnMajor {
    /// Layout for an array of the given per-dimension extents.
    pub fn new(extents: &[usize]) -> Self {
        assert!(!extents.is_empty());
        let mut strides = Vec::with_capacity(extents.len());
        let mut s = 1usize;
        for &e in extents {
            strides.push(s);
            s = s.checked_mul(e).expect("array too large");
        }
        ColumnMajor {
            extents: extents.to_vec(),
            strides,
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    /// True if the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Element stride of dimension `d`.
    pub fn stride(&self, d: usize) -> usize {
        self.strides[d]
    }

    /// Linear element offset of a (0-based) index tuple.
    pub fn offset(&self, index: &[i64]) -> usize {
        assert_eq!(index.len(), self.ndims());
        let mut off = 0usize;
        for (d, &i) in index.iter().enumerate() {
            debug_assert!(
                i >= 0 && (i as usize) < self.extents[d],
                "index {i} out of bounds in dim {d} (extent {})",
                self.extents[d]
            );
            off += i as usize * self.strides[d];
        }
        off
    }

    /// Linearize a section to element-offset ranges.
    ///
    /// Returns `None` if the section is not one of the supported shapes
    /// (dense in dim 0, at most one partially-indexed higher dim with
    /// stride 1 over that dim) — the compiler then declines to optimize the
    /// reference, exactly as the paper's compiler does.
    pub fn linearize(&self, sec: &Section) -> Option<LinearRanges> {
        if sec.ndims() != self.ndims() {
            return None;
        }
        if sec.is_empty() {
            return Some(LinearRanges::empty());
        }
        // Dim 0 must be dense to form contiguous runs.
        let d0 = &sec.dims[0];
        if d0.stride != 1 {
            return None;
        }
        if d0.lo < 0 || d0.hi as usize >= self.extents[0] {
            return None;
        }
        let run_base = d0.lo as usize;
        let mut run_len = d0.count() as usize;

        // Collapse leading full dimensions into longer contiguous runs.
        let mut d = 1;
        let full_prefix = run_len == self.extents[0] && run_base == 0;
        while d < self.ndims() && full_prefix {
            let r = &sec.dims[d];
            if r.stride == 1 && r.lo == 0 && r.hi as usize == self.extents[d] - 1 {
                run_len *= self.extents[d];
                d += 1;
            } else {
                break;
            }
        }
        if d == self.ndims() {
            return Some(LinearRanges {
                runs: vec![StridedRange {
                    base: run_base,
                    run_len,
                    stride: 0,
                    count: 1,
                }],
            });
        }

        // Remaining dims: exactly one may be a partial dense/strided range;
        // any further dims must be single points.
        let part = &sec.dims[d];
        if part.lo < 0 || part.hi as usize >= self.extents[d] {
            return None;
        }
        let part_base = part.lo as usize * self.strides[d];
        let part_stride = part.stride as usize * self.strides[d];
        let part_count = part.count() as usize;

        let mut fixed_off = 0usize;
        for dd in d + 1..self.ndims() {
            let r = &sec.dims[dd];
            if r.count() != 1 {
                // 3-D sections with two partial dims: represent as multiple
                // strided groups only if the outermost is small; otherwise
                // unsupported.
                return self.linearize_multi(sec, d);
            }
            if r.lo < 0 || r.lo as usize >= self.extents[dd] {
                return None;
            }
            fixed_off += r.lo as usize * self.strides[dd];
        }

        Some(LinearRanges {
            runs: vec![StridedRange {
                base: run_base + part_base + fixed_off,
                run_len,
                stride: part_stride,
                count: part_count,
            }],
        })
    }

    /// Fallback for sections with two or more partial higher dimensions:
    /// enumerate the outer dims into separate strided groups.
    fn linearize_multi(&self, sec: &Section, d: usize) -> Option<LinearRanges> {
        // Only handle one extra level (3-D arrays) with a modest outer count.
        let outer_dim = self.ndims() - 1;
        if outer_dim <= d {
            return None;
        }
        let outer = &sec.dims[outer_dim];
        if outer.count() > 4096 {
            return None;
        }
        let mut runs = Vec::new();
        for x in outer.iter() {
            let mut dims = sec.dims.clone();
            dims[outer_dim] = crate::range::Range::new(x, x);
            let sub = Section::new(dims);
            let lr = self.linearize(&sub)?;
            runs.extend(lr.runs);
        }
        Some(LinearRanges { runs })
    }
}

/// A group of equally-spaced contiguous element runs:
/// `base + i*stride .. base + i*stride + run_len` for `i in 0..count`.
///
/// `stride == 0` is only used for the single-run case (`count == 1`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StridedRange {
    /// Element offset of the first run.
    pub base: usize,
    /// Length of each contiguous run, in elements.
    pub run_len: usize,
    /// Element distance between successive run starts.
    pub stride: usize,
    /// Number of runs.
    pub count: usize,
}

impl StridedRange {
    /// Total number of elements covered.
    pub fn total_elements(&self) -> usize {
        self.run_len * self.count
    }

    /// Iterate over `(start, len)` element runs.
    pub fn runs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let s = *self;
        (0..s.count).map(move |i| (s.base + i * s.stride, s.run_len))
    }
}

/// The linearization of a section: a small list of [`StridedRange`] groups.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinearRanges {
    pub runs: Vec<StridedRange>,
}

impl LinearRanges {
    /// The empty linearization.
    pub fn empty() -> Self {
        LinearRanges { runs: vec![] }
    }

    /// True if no elements are covered.
    pub fn is_empty(&self) -> bool {
        self.runs.iter().all(|r| r.total_elements() == 0)
    }

    /// Total elements covered.
    pub fn total_elements(&self) -> usize {
        self.runs.iter().map(StridedRange::total_elements).sum()
    }

    /// Iterate over all `(start, len)` contiguous element runs.
    pub fn iter_runs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.runs.iter().flat_map(StridedRange::runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::Range;

    #[test]
    fn offsets_column_major() {
        let l = ColumnMajor::new(&[4, 3]);
        assert_eq!(l.offset(&[0, 0]), 0);
        assert_eq!(l.offset(&[1, 0]), 1);
        assert_eq!(l.offset(&[0, 1]), 4);
        assert_eq!(l.offset(&[3, 2]), 11);
        assert_eq!(l.len(), 12);
    }

    #[test]
    fn full_column_is_contiguous() {
        let l = ColumnMajor::new(&[8, 6]);
        let s = Section::new(vec![Range::new(0, 7), Range::new(2, 2)]);
        let lr = l.linearize(&s).unwrap();
        assert_eq!(lr.runs.len(), 1);
        assert_eq!(lr.runs[0].base, 16);
        assert_eq!(lr.runs[0].run_len, 8);
        assert_eq!(lr.runs[0].count, 1);
    }

    #[test]
    fn multiple_columns_contiguous() {
        // Full columns j=1..3 of an 8x6 array are one contiguous run
        // because dim 0 is full.
        let l = ColumnMajor::new(&[8, 6]);
        let s = Section::new(vec![Range::new(0, 7), Range::new(1, 3)]);
        let lr = l.linearize(&s).unwrap();
        assert_eq!(lr.runs.len(), 1);
        let r = lr.runs[0];
        assert_eq!((r.base, r.run_len, r.count), (8, 8, 3));
        assert_eq!(r.stride, 8);
        // Runs are adjacent, so callers may coalesce.
        assert_eq!(lr.total_elements(), 24);
    }

    #[test]
    fn partial_rows_are_2d_strided() {
        // Rows 2..5 of each column j=0..5: strided with run 4, stride 8.
        let l = ColumnMajor::new(&[8, 6]);
        let s = Section::new(vec![Range::new(2, 5), Range::new(0, 5)]);
        let lr = l.linearize(&s).unwrap();
        assert_eq!(lr.runs.len(), 1);
        let r = lr.runs[0];
        assert_eq!((r.base, r.run_len, r.stride, r.count), (2, 4, 8, 6));
    }

    #[test]
    fn strided_dim0_unsupported() {
        let l = ColumnMajor::new(&[8, 6]);
        let s = Section::new(vec![Range::strided(0, 6, 2), Range::new(0, 5)]);
        assert!(l.linearize(&s).is_none());
    }

    #[test]
    fn three_d_plane() {
        // Plane k=3 of a 4x4x4 array: contiguous 16 elements at offset 48.
        let l = ColumnMajor::new(&[4, 4, 4]);
        let s = Section::new(vec![Range::new(0, 3), Range::new(0, 3), Range::new(3, 3)]);
        let lr = l.linearize(&s).unwrap();
        assert_eq!(lr.runs.len(), 1);
        assert_eq!(
            (lr.runs[0].base, lr.runs[0].run_len, lr.runs[0].count),
            (48, 16, 1)
        );
    }

    #[test]
    fn three_d_two_partial_dims_enumerates() {
        // Sub-box rows 0..3, cols 1..2, planes 0..2 of a 4x4x4 array.
        let l = ColumnMajor::new(&[4, 4, 4]);
        let s = Section::new(vec![Range::new(0, 3), Range::new(1, 2), Range::new(0, 2)]);
        let lr = l.linearize(&s).unwrap();
        assert_eq!(lr.total_elements(), 4 * 2 * 3);
        // All runs must land inside the array.
        for (start, len) in lr.iter_runs() {
            assert!(start + len <= l.len());
        }
    }

    #[test]
    fn empty_section_linearizes_empty() {
        let l = ColumnMajor::new(&[8, 6]);
        let s = Section::new(vec![Range::empty(), Range::new(0, 5)]);
        let lr = l.linearize(&s).unwrap();
        assert!(lr.is_empty());
    }
}
