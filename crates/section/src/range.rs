//! One-dimensional strided integer ranges, symbolic and concrete.

use crate::affine::{Affine, Env};
use std::fmt;

/// A concrete strided range `{ lo, lo+stride, ..., ≤ hi }` (inclusive
/// bounds, Fortran-style).
///
/// An empty range is represented by `lo > hi`. Stride must be ≥ 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Range {
    pub lo: i64,
    pub hi: i64,
    pub stride: i64,
}

impl Range {
    /// A dense (stride-1) range `lo:hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        Range { lo, hi, stride: 1 }
    }

    /// A strided range `lo:hi:stride`.
    pub fn strided(lo: i64, hi: i64, stride: i64) -> Self {
        assert!(stride >= 1, "stride must be positive, got {stride}");
        Range { lo, hi, stride }
    }

    /// The canonical empty range.
    pub fn empty() -> Self {
        Range {
            lo: 1,
            hi: 0,
            stride: 1,
        }
    }

    /// True if the range contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Number of points in the range.
    pub fn count(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            ((self.hi - self.lo) / self.stride + 1) as u64
        }
    }

    /// The largest element actually reached (≤ hi, aligned to the stride).
    pub fn last(&self) -> Option<i64> {
        if self.is_empty() {
            None
        } else {
            Some(self.lo + ((self.hi - self.lo) / self.stride) * self.stride)
        }
    }

    /// True if `x` is one of the points of the range.
    pub fn contains(&self, x: i64) -> bool {
        !self.is_empty() && x >= self.lo && x <= self.hi && (x - self.lo) % self.stride == 0
    }

    /// Intersection with another range.
    ///
    /// Fully general stride intersection requires solving a linear
    /// congruence; the planner only ever intersects ranges where at least
    /// one side is dense (stride 1) or both strides are equal with
    /// congruent phase — exactly the cases Omega's generated code produces
    /// for last-dimension BLOCK/CYCLIC distributions. Other cases fall back
    /// to an exact (but O(n)) enumeration capped for safety.
    pub fn intersect(&self, other: &Range) -> Vec<Range> {
        if self.is_empty() || other.is_empty() {
            return vec![];
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return vec![];
        }
        if self.stride == 1 && other.stride == 1 {
            return vec![Range::new(lo, hi)];
        }
        if self.stride == 1 {
            return other.clip(lo, hi).map(|r| vec![r]).unwrap_or_default();
        }
        if other.stride == 1 {
            return self.clip(lo, hi).map(|r| vec![r]).unwrap_or_default();
        }
        if self.stride == other.stride {
            if (self.lo - other.lo) % self.stride == 0 {
                // Same phase: intersection is strided with the same stride.
                let mut start = lo;
                let rem = (start - self.lo).rem_euclid(self.stride);
                if rem != 0 {
                    start += self.stride - rem;
                }
                if start > hi {
                    return vec![];
                }
                let last = start + ((hi - start) / self.stride) * self.stride;
                let stride = if start == last { 1 } else { self.stride };
                return vec![Range::strided(start, last, stride)];
            }
            return vec![]; // disjoint congruence classes
        }
        // General fallback: enumerate the sparser side.
        let (sparse, dense) = if self.count() <= other.count() {
            (self, other)
        } else {
            (other, self)
        };
        assert!(
            sparse.count() <= 1 << 22,
            "refusing to enumerate huge mixed-stride intersection"
        );
        let mut pts: Vec<i64> = sparse.iter().filter(|&x| dense.contains(x)).collect();
        pts.sort_unstable();
        pts.into_iter().map(|x| Range::new(x, x)).collect()
    }

    /// Clip a strided range to `[lo, hi]`, keeping stride and phase.
    fn clip(&self, lo: i64, hi: i64) -> Option<Range> {
        let mut start = self.lo.max(lo);
        let rem = (start - self.lo).rem_euclid(self.stride);
        if rem != 0 {
            start += self.stride - rem;
        }
        let end = self.hi.min(hi);
        if start > end {
            None
        } else {
            // Canonicalize: tighten `hi` to the last point actually reached
            // (and collapse single points to stride 1) so that set-equal
            // ranges are structurally equal.
            let last = start + ((end - start) / self.stride) * self.stride;
            let stride = if start == last { 1 } else { self.stride };
            Some(Range::strided(start, last, stride))
        }
    }

    /// Set difference `self − other`, restricted to the shapes the planner
    /// needs: subtracting a dense range from a dense range yields at most
    /// two dense pieces. For strided operands, pieces keep the stride of
    /// `self` when `other` is dense; other combinations fall back to
    /// enumeration (bounded, used only in tests).
    pub fn subtract(&self, other: &Range) -> Vec<Range> {
        if self.is_empty() {
            return vec![];
        }
        if other.is_empty() {
            return vec![*self];
        }
        if other.stride == 1 {
            // Remove the interval [other.lo, other.hi] from self.
            let mut out = Vec::with_capacity(2);
            if self.lo < other.lo {
                if let Some(r) = self.clip(self.lo, other.lo - 1) {
                    out.push(r);
                }
            }
            if self.hi > other.hi {
                if let Some(r) = self.clip(other.hi + 1, self.hi) {
                    out.push(r);
                }
            }
            // If `other` doesn't overlap at all, clip produced self back.
            if other.hi < self.lo || other.lo > self.hi {
                return vec![*self];
            }
            return out;
        }
        // Strided subtrahend: exact enumeration (small cases only).
        assert!(
            self.count() <= 1 << 22,
            "refusing to enumerate huge strided difference"
        );
        let mut out: Vec<Range> = Vec::new();
        for x in self.iter() {
            if !other.contains(x) {
                match out.last_mut() {
                    Some(last) if last.hi + 1 == x && last.stride == 1 => last.hi = x,
                    _ => out.push(Range::new(x, x)),
                }
            }
        }
        out
    }

    /// Iterate over the points of the range.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let r = *self;
        (0..r.count() as i64).map(move |i| r.lo + i * r.stride)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else if self.stride == 1 {
            write!(f, "{}:{}", self.lo, self.hi)
        } else {
            write!(f, "{}:{}:{}", self.lo, self.hi, self.stride)
        }
    }
}

/// A symbolic strided range with affine bounds, evaluated to a [`Range`] at
/// run time.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SymRange {
    pub lo: Affine,
    pub hi: Affine,
    pub stride: i64,
}

impl SymRange {
    /// A dense symbolic range `lo:hi`.
    pub fn new(lo: impl Into<Affine>, hi: impl Into<Affine>) -> Self {
        SymRange {
            lo: lo.into(),
            hi: hi.into(),
            stride: 1,
        }
    }

    /// A strided symbolic range `lo:hi:stride`.
    pub fn strided(lo: impl Into<Affine>, hi: impl Into<Affine>, stride: i64) -> Self {
        assert!(stride >= 1);
        SymRange {
            lo: lo.into(),
            hi: hi.into(),
            stride,
        }
    }

    /// Evaluate to a concrete range under `env`.
    pub fn eval(&self, env: &Env) -> Range {
        Range {
            lo: self.lo.eval(env),
            hi: self.hi.eval(env),
            stride: self.stride,
        }
    }

    /// Shift both bounds by the constant `c` (used to apply stencil
    /// offsets like `a(i, j-1)`).
    pub fn shift(&self, c: i64) -> SymRange {
        SymRange {
            lo: self.lo.clone().plus_const(c),
            hi: self.hi.clone().plus_const(c),
            stride: self.stride,
        }
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stride == 1 {
            write!(f, "{}:{}", self.lo, self.hi)
        } else {
            write!(f, "{}:{}:{}", self.lo, self.hi, self.stride)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Var;

    #[test]
    fn count_and_contains() {
        let r = Range::strided(2, 10, 3); // 2,5,8
        assert_eq!(r.count(), 3);
        assert!(r.contains(5));
        assert!(!r.contains(6));
        assert!(!r.contains(11));
        assert_eq!(r.last(), Some(8));
    }

    #[test]
    fn empty_behaviour() {
        let e = Range::empty();
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        assert_eq!(e.intersect(&Range::new(0, 10)), vec![]);
        assert_eq!(Range::new(0, 10).subtract(&e), vec![Range::new(0, 10)]);
    }

    #[test]
    fn dense_intersect() {
        let a = Range::new(0, 10);
        let b = Range::new(5, 20);
        assert_eq!(a.intersect(&b), vec![Range::new(5, 10)]);
        assert_eq!(a.intersect(&Range::new(11, 20)), vec![]);
    }

    #[test]
    fn dense_with_strided_intersect() {
        let a = Range::new(0, 20);
        let b = Range::strided(1, 19, 4); // 1,5,9,13,17
        assert_eq!(a.intersect(&b), vec![Range::strided(1, 17, 4)]);
        let c = Range::new(6, 14);
        assert_eq!(b.intersect(&c), vec![Range::strided(9, 13, 4)]);
    }

    #[test]
    fn equal_stride_intersect() {
        let a = Range::strided(0, 20, 4); // 0,4,8,12,16,20
        let b = Range::strided(8, 28, 4);
        assert_eq!(a.intersect(&b), vec![Range::strided(8, 20, 4)]);
        let c = Range::strided(1, 21, 4); // different phase
        assert_eq!(a.intersect(&c), vec![]);
    }

    #[test]
    fn dense_subtract_middle() {
        let a = Range::new(0, 10);
        let b = Range::new(3, 6);
        assert_eq!(a.subtract(&b), vec![Range::new(0, 2), Range::new(7, 10)]);
    }

    #[test]
    fn dense_subtract_edges() {
        let a = Range::new(0, 10);
        assert_eq!(a.subtract(&Range::new(0, 4)), vec![Range::new(5, 10)]);
        assert_eq!(a.subtract(&Range::new(7, 10)), vec![Range::new(0, 6)]);
        assert_eq!(a.subtract(&Range::new(0, 10)), vec![]);
        assert_eq!(a.subtract(&Range::new(-5, 20)), vec![]);
        assert_eq!(a.subtract(&Range::new(20, 30)), vec![a]);
    }

    #[test]
    fn strided_subtract_dense_keeps_stride() {
        let a = Range::strided(0, 20, 4);
        let b = Range::new(7, 13);
        // Removes 8 and 12 → pieces 0,4 and 16,20.
        assert_eq!(
            a.subtract(&b),
            vec![Range::strided(0, 4, 4), Range::strided(16, 20, 4)]
        );
    }

    #[test]
    fn symrange_eval_and_shift() {
        let k = Var("k");
        let sr = SymRange::new(Affine::var(k).plus_const(1), 100);
        let env = Env::new().bind(k, 9);
        assert_eq!(sr.eval(&env), Range::new(10, 100));
        assert_eq!(sr.shift(-1).eval(&env), Range::new(9, 99));
    }
}
