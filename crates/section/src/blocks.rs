//! Multi-word cache-block subsetting (`shmem_limits`, paper §3 and §4.2).
//!
//! A coherence unit (cache block) typically holds several array elements,
//! possibly even elements of *different* columns (`a(513,1)` and `a(1,2)`
//! can share a block for a 513×513 array). The compiler may only take a
//! block under explicit control if *every* element in it is covered by its
//! analysis. `shmem_limits` therefore shrinks the candidate byte range
//! `[lo, hi)` to the largest block-aligned subrange `[lo', hi')` with
//! `lo' ≥ lo`, `hi' ≤ hi`; the boundary remainders stay under the default
//! protocol.

/// Result of subsetting a byte range to whole cache blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockSubset {
    /// First block index fully inside the range, inclusive.
    pub first_block: usize,
    /// One past the last block fully inside the range.
    pub end_block: usize,
    /// Bytes before the first whole block (left to the default protocol).
    pub head_bytes: usize,
    /// Bytes after the last whole block (left to the default protocol).
    pub tail_bytes: usize,
}

impl BlockSubset {
    /// Number of whole blocks under compiler control.
    pub fn block_count(&self) -> usize {
        self.end_block.saturating_sub(self.first_block)
    }

    /// True if no whole block fits.
    pub fn is_empty(&self) -> bool {
        self.block_count() == 0
    }

    /// Byte range covered by the whole blocks.
    pub fn byte_range(&self, block_size: usize) -> (usize, usize) {
        (self.first_block * block_size, self.end_block * block_size)
    }
}

/// Shrink the byte range `[lo, hi)` to whole blocks of `block_size` bytes.
///
/// # Panics
/// Panics if `block_size` is zero or not a power of two (Tempest blocks are
/// 32–128 bytes).
pub fn block_subset(lo: usize, hi: usize, block_size: usize) -> BlockSubset {
    assert!(
        block_size.is_power_of_two(),
        "block size must be a power of two"
    );
    if hi <= lo {
        return BlockSubset {
            first_block: lo / block_size,
            end_block: lo / block_size,
            head_bytes: 0,
            tail_bytes: 0,
        };
    }
    let first_block = lo.div_ceil(block_size);
    let end_block = hi / block_size;
    if end_block <= first_block {
        // The range fits strictly inside one or two blocks; nothing is
        // block-aligned, everything is boundary.
        return BlockSubset {
            first_block,
            end_block: first_block,
            head_bytes: hi - lo,
            tail_bytes: 0,
        };
    }
    BlockSubset {
        first_block,
        end_block,
        head_bytes: first_block * block_size - lo,
        tail_bytes: hi - end_block * block_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_range_all_blocks() {
        let s = block_subset(0, 512, 128);
        assert_eq!(s.first_block, 0);
        assert_eq!(s.end_block, 4);
        assert_eq!(s.head_bytes, 0);
        assert_eq!(s.tail_bytes, 0);
        assert_eq!(s.block_count(), 4);
    }

    #[test]
    fn unaligned_head_and_tail() {
        let s = block_subset(100, 1000, 128);
        assert_eq!(s.first_block, 1);
        assert_eq!(s.end_block, 7);
        assert_eq!(s.head_bytes, 128 - 100);
        assert_eq!(s.tail_bytes, 1000 - 7 * 128);
        assert_eq!(s.byte_range(128), (128, 896));
    }

    #[test]
    fn too_small_for_any_block() {
        let s = block_subset(10, 90, 128);
        assert!(s.is_empty());
        assert_eq!(s.head_bytes, 80);
    }

    #[test]
    fn spans_boundary_but_no_whole_block() {
        let s = block_subset(100, 200, 128);
        assert!(s.is_empty());
        assert_eq!(s.head_bytes, 100);
    }

    #[test]
    fn empty_range() {
        let s = block_subset(256, 256, 128);
        assert!(s.is_empty());
        assert_eq!(s.head_bytes, 0);
        assert_eq!(s.tail_bytes, 0);
    }

    #[test]
    fn exactly_one_block() {
        let s = block_subset(128, 256, 128);
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.first_block, 1);
    }

    #[test]
    fn invariant_head_plus_blocks_plus_tail() {
        for (lo, hi) in [(0usize, 1024usize), (33, 997), (1, 129), (127, 129)] {
            for bs in [32usize, 64, 128] {
                let s = block_subset(lo, hi, bs);
                assert_eq!(
                    s.head_bytes + s.block_count() * bs + s.tail_bytes,
                    hi - lo,
                    "lo={lo} hi={hi} bs={bs}"
                );
            }
        }
    }
}
