//! Multi-dimensional rectangular strided sections.
//!
//! A [`Section`] is the cartesian product of per-dimension [`Range`]s —
//! a regular section descriptor in the sense of Balasundaram's data access
//! descriptors, which the paper notes would suffice for the sections it
//! optimizes. Set operations on concrete sections are exact for the
//! rectangular case: the difference of two rectangles is a disjoint union
//! of at most `2·ndims` rectangles.

use crate::affine::Env;
use crate::range::{Range, SymRange};
use std::fmt;

/// A concrete rectangular strided section (product of per-dim ranges).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Section {
    pub dims: Vec<Range>,
}

impl Section {
    /// Build a section from per-dimension ranges.
    pub fn new(dims: Vec<Range>) -> Self {
        Section { dims }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// True if any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Range::is_empty)
    }

    /// Number of elements.
    pub fn count(&self) -> u64 {
        if self.dims.is_empty() {
            return 0;
        }
        self.dims.iter().map(Range::count).product()
    }

    /// True if the point is in the section.
    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.ndims() && self.dims.iter().zip(point).all(|(r, &x)| r.contains(x))
    }

    /// Exact intersection. Rectangular sections are closed under
    /// intersection except for incompatible strides, in which case each
    /// per-dim intersection may split; the result is the cross product of
    /// the per-dim pieces.
    pub fn intersect(&self, other: &Section) -> Vec<Section> {
        assert_eq!(self.ndims(), other.ndims(), "dimension mismatch");
        let mut acc: Vec<Vec<Range>> = vec![vec![]];
        for (a, b) in self.dims.iter().zip(&other.dims) {
            let pieces = a.intersect(b);
            if pieces.is_empty() {
                return vec![];
            }
            let mut next = Vec::with_capacity(acc.len() * pieces.len());
            for prefix in &acc {
                for piece in &pieces {
                    let mut p = prefix.clone();
                    p.push(*piece);
                    next.push(p);
                }
            }
            acc = next;
        }
        acc.into_iter().map(Section::new).collect()
    }

    /// Exact rectangular difference `self − other`: a disjoint union of
    /// rectangles obtained by slicing dimension-by-dimension.
    pub fn subtract(&self, other: &Section) -> Vec<Section> {
        assert_eq!(self.ndims(), other.ndims(), "dimension mismatch");
        if self.is_empty() {
            return vec![];
        }
        let overlap = self.intersect(other);
        if overlap.is_empty() {
            return vec![self.clone()];
        }
        // Standard sweep: for each dim d, emit (self restricted to dims<d
        // already clipped to the overlap) × (self_d − other_d) × (self for
        // dims>d). Exact and disjoint for a single-rectangle overlap; for
        // multi-piece overlaps (incompatible strides) fall back to
        // iterated subtraction.
        if overlap.len() == 1 {
            let ov = &overlap[0];
            let mut out = Vec::new();
            for d in 0..self.ndims() {
                for piece in self.dims[d].subtract(&other.dims[d]) {
                    let mut dims = Vec::with_capacity(self.ndims());
                    dims.extend_from_slice(&ov.dims[..d]);
                    dims.push(piece);
                    dims.extend_from_slice(&self.dims[d + 1..]);
                    let s = Section::new(dims);
                    if !s.is_empty() {
                        out.push(s);
                    }
                }
            }
            out
        } else {
            let mut rest = vec![self.clone()];
            for ov in &overlap {
                let mut next = Vec::new();
                for piece in &rest {
                    next.extend(piece.subtract(ov));
                }
                rest = next;
            }
            rest
        }
    }

    /// Enumerate all points (row of index tuples); for tests and small
    /// sections only.
    pub fn points(&self) -> Vec<Vec<i64>> {
        if self.is_empty() {
            return vec![];
        }
        let mut out: Vec<Vec<i64>> = vec![vec![]];
        for r in &self.dims {
            let mut next = Vec::with_capacity(out.len() * r.count() as usize);
            for prefix in &out {
                for x in r.iter() {
                    let mut p = prefix.clone();
                    p.push(x);
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// A symbolic section: product of symbolic per-dimension ranges.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SymSection {
    pub dims: Vec<SymRange>,
}

impl SymSection {
    /// Build a symbolic section.
    pub fn new(dims: Vec<SymRange>) -> Self {
        SymSection { dims }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Evaluate to a concrete [`Section`] under `env`.
    pub fn eval(&self, env: &Env) -> Section {
        Section::new(self.dims.iter().map(|d| d.eval(env)).collect())
    }
}

impl fmt::Display for SymSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec2(r0: Range, r1: Range) -> Section {
        Section::new(vec![r0, r1])
    }

    #[test]
    fn count_empty() {
        let s = sec2(Range::new(0, 9), Range::new(0, 4));
        assert_eq!(s.count(), 50);
        assert!(!s.is_empty());
        let e = sec2(Range::new(0, 9), Range::empty());
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn intersect_2d() {
        let a = sec2(Range::new(0, 9), Range::new(0, 9));
        let b = sec2(Range::new(5, 15), Range::new(-3, 3));
        let i = a.intersect(&b);
        assert_eq!(i, vec![sec2(Range::new(5, 9), Range::new(0, 3))]);
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = sec2(Range::new(0, 4), Range::new(0, 4));
        let b = sec2(Range::new(10, 14), Range::new(0, 4));
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_covers_exact_partition() {
        // Subtract the middle column block from a 10x10 square: results
        // must be disjoint and cover exactly the complement.
        let a = sec2(Range::new(0, 9), Range::new(0, 9));
        let b = sec2(Range::new(0, 9), Range::new(4, 6));
        let parts = a.subtract(&b);
        let mut covered = std::collections::HashSet::new();
        for p in &parts {
            for pt in p.points() {
                assert!(covered.insert(pt.clone()), "overlap at {pt:?}");
                assert!(a.contains(&pt));
                assert!(!b.contains(&pt));
            }
        }
        assert_eq!(covered.len() as u64, a.count() - b.count());
    }

    #[test]
    fn subtract_corner_overlap() {
        let a = sec2(Range::new(0, 9), Range::new(0, 9));
        let b = sec2(Range::new(7, 12), Range::new(7, 12));
        let parts = a.subtract(&b);
        let total: u64 = parts.iter().map(Section::count).sum();
        assert_eq!(total, 100 - 9); // 3x3 corner removed
                                    // Disjointness
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            for pt in p.points() {
                assert!(seen.insert(pt));
            }
        }
    }

    #[test]
    fn points_matches_count() {
        let s = sec2(Range::strided(0, 8, 2), Range::new(3, 5));
        assert_eq!(s.points().len() as u64, s.count());
    }
}
