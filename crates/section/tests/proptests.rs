//! Property-based tests for the omega-lite section algebra.
//!
//! Every set operation is checked against a brute-force model over small
//! integer universes: intersection and difference must agree point-for-point
//! with naive set semantics, results must be disjoint, and block subsetting
//! must partition the byte range exactly.
//!
//! Gated behind the `proptest` feature so the default tier-1 test run stays
//! fast: `cargo test -p fgdsm-section --features proptest`.
#![cfg(feature = "proptest")]

use fgdsm_section::{block_subset, ColumnMajor, Range, Section};
use fgdsm_testkit::{check_cases, Rng};
use std::collections::HashSet;

fn random_range(rng: &mut Rng) -> Range {
    let lo = rng.range_i64(-20, 40);
    let len = rng.range_i64(0, 30);
    let stride = rng.range_i64(1, 6);
    Range {
        lo,
        hi: lo + len,
        stride,
    }
}

fn model(r: &Range) -> HashSet<i64> {
    r.iter().collect()
}

#[test]
fn range_count_matches_model() {
    check_cases(128, |rng| {
        let r = random_range(rng);
        assert_eq!(r.count() as usize, model(&r).len());
    });
}

#[test]
fn range_contains_matches_model() {
    check_cases(128, |rng| {
        let r = random_range(rng);
        let x = rng.range_i64(-30, 60);
        assert_eq!(r.contains(x), model(&r).contains(&x));
    });
}

#[test]
fn range_intersect_matches_model() {
    check_cases(128, |rng| {
        let a = random_range(rng);
        let b = random_range(rng);
        let expected: HashSet<i64> = model(&a).intersection(&model(&b)).copied().collect();
        let mut got = HashSet::new();
        for piece in a.intersect(&b) {
            for x in piece.iter() {
                assert!(got.insert(x), "intersection pieces overlap at {x}");
            }
        }
        assert_eq!(got, expected);
    });
}

#[test]
fn range_subtract_matches_model() {
    check_cases(128, |rng| {
        let a = random_range(rng);
        let b = random_range(rng);
        let expected: HashSet<i64> = model(&a).difference(&model(&b)).copied().collect();
        let mut got = HashSet::new();
        for piece in a.subtract(&b) {
            for x in piece.iter() {
                assert!(got.insert(x), "difference pieces overlap at {x}");
            }
        }
        assert_eq!(got, expected);
    });
}

#[test]
fn section_subtract_matches_model() {
    check_cases(64, |rng| {
        let a = Section::new(vec![random_range(rng), random_range(rng)]);
        let b = Section::new(vec![random_range(rng), random_range(rng)]);
        let am: HashSet<Vec<i64>> = a.points().into_iter().collect();
        let bm: HashSet<Vec<i64>> = b.points().into_iter().collect();
        let expected: HashSet<Vec<i64>> = am.difference(&bm).cloned().collect();
        let mut got = HashSet::new();
        for piece in a.subtract(&b) {
            for pt in piece.points() {
                assert!(
                    got.insert(pt.clone()),
                    "difference pieces overlap at {pt:?}"
                );
            }
        }
        assert_eq!(got, expected);
    });
}

#[test]
fn section_intersect_matches_model() {
    check_cases(64, |rng| {
        let a = Section::new(vec![random_range(rng), random_range(rng)]);
        let b = Section::new(vec![random_range(rng), random_range(rng)]);
        let am: HashSet<Vec<i64>> = a.points().into_iter().collect();
        let bm: HashSet<Vec<i64>> = b.points().into_iter().collect();
        let expected: HashSet<Vec<i64>> = am.intersection(&bm).cloned().collect();
        let mut got = HashSet::new();
        for piece in a.intersect(&b) {
            for pt in piece.points() {
                assert!(
                    got.insert(pt.clone()),
                    "intersection pieces overlap at {pt:?}"
                );
            }
        }
        assert_eq!(got, expected);
    });
}

#[test]
fn block_subset_partitions_range() {
    check_cases(256, |rng| {
        let lo = rng.range(0, 4096);
        let len = rng.range(0, 4096);
        let bs = 1usize << rng.range(5, 8); // 32..128
        let hi = lo + len;
        let s = block_subset(lo, hi, bs);
        // head + whole blocks + tail exactly tile [lo, hi)
        assert_eq!(s.head_bytes + s.block_count() * bs + s.tail_bytes, hi - lo);
        // whole blocks lie inside [lo, hi) and are aligned
        if !s.is_empty() {
            let (blo, bhi) = s.byte_range(bs);
            assert!(blo >= lo && bhi <= hi);
            assert_eq!(blo % bs, 0);
            assert_eq!(bhi % bs, 0);
        }
    });
}

#[test]
fn linearize_covers_section_exactly() {
    check_cases(96, |rng| {
        let rows = rng.range(1, 12);
        let cols = rng.range(1, 12);
        let r0 = random_range(rng);
        let r1 = random_range(rng);
        let l = ColumnMajor::new(&[rows, cols]);
        // Clamp ranges into bounds and force dim0 dense so linearize accepts.
        let d0 = Range::new(r0.lo.rem_euclid(rows as i64), r0.hi.rem_euclid(rows as i64));
        let d1 = Range::strided(
            r1.lo.rem_euclid(cols as i64),
            r1.hi.rem_euclid(cols as i64),
            r1.stride,
        );
        let sec = Section::new(vec![d0, d1]);
        if let Some(lr) = l.linearize(&sec) {
            let mut offsets: HashSet<usize> = HashSet::new();
            for (start, len) in lr.iter_runs() {
                for o in start..start + len {
                    assert!(offsets.insert(o), "linearized runs overlap at {o}");
                }
            }
            let expected: HashSet<usize> = sec.points().iter().map(|pt| l.offset(pt)).collect();
            assert_eq!(offsets, expected);
        }
    });
}
