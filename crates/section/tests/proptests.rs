//! Property-based tests for the omega-lite section algebra.
//!
//! Every set operation is checked against a brute-force model over small
//! integer universes: intersection and difference must agree point-for-point
//! with naive set semantics, results must be disjoint, and block subsetting
//! must partition the byte range exactly.

use fgdsm_section::{block_subset, ColumnMajor, Range, Section};
use proptest::prelude::*;
use std::collections::HashSet;

fn range_strategy() -> impl Strategy<Value = Range> {
    (-20i64..40, 0i64..30, 1i64..6).prop_map(|(lo, len, stride)| Range {
        lo,
        hi: lo + len,
        stride,
    })
}

fn model(r: &Range) -> HashSet<i64> {
    r.iter().collect()
}

proptest! {
    #[test]
    fn range_count_matches_model(r in range_strategy()) {
        prop_assert_eq!(r.count() as usize, model(&r).len());
    }

    #[test]
    fn range_contains_matches_model(r in range_strategy(), x in -30i64..60) {
        prop_assert_eq!(r.contains(x), model(&r).contains(&x));
    }

    #[test]
    fn range_intersect_matches_model(a in range_strategy(), b in range_strategy()) {
        let expected: HashSet<i64> = model(&a).intersection(&model(&b)).copied().collect();
        let mut got = HashSet::new();
        for piece in a.intersect(&b) {
            for x in piece.iter() {
                prop_assert!(got.insert(x), "intersection pieces overlap at {}", x);
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn range_subtract_matches_model(a in range_strategy(), b in range_strategy()) {
        let expected: HashSet<i64> = model(&a).difference(&model(&b)).copied().collect();
        let mut got = HashSet::new();
        for piece in a.subtract(&b) {
            for x in piece.iter() {
                prop_assert!(got.insert(x), "difference pieces overlap at {}", x);
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn section_subtract_matches_model(
        (a0, a1) in (range_strategy(), range_strategy()),
        (b0, b1) in (range_strategy(), range_strategy()),
    ) {
        let a = Section::new(vec![a0, a1]);
        let b = Section::new(vec![b0, b1]);
        let am: HashSet<Vec<i64>> = a.points().into_iter().collect();
        let bm: HashSet<Vec<i64>> = b.points().into_iter().collect();
        let expected: HashSet<Vec<i64>> = am.difference(&bm).cloned().collect();
        let mut got = HashSet::new();
        for piece in a.subtract(&b) {
            for pt in piece.points() {
                prop_assert!(got.insert(pt.clone()), "difference pieces overlap at {:?}", pt);
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn section_intersect_matches_model(
        (a0, a1) in (range_strategy(), range_strategy()),
        (b0, b1) in (range_strategy(), range_strategy()),
    ) {
        let a = Section::new(vec![a0, a1]);
        let b = Section::new(vec![b0, b1]);
        let am: HashSet<Vec<i64>> = a.points().into_iter().collect();
        let bm: HashSet<Vec<i64>> = b.points().into_iter().collect();
        let expected: HashSet<Vec<i64>> = am.intersection(&bm).cloned().collect();
        let mut got = HashSet::new();
        for piece in a.intersect(&b) {
            for pt in piece.points() {
                prop_assert!(got.insert(pt.clone()), "intersection pieces overlap at {:?}", pt);
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn block_subset_partitions_range(
        lo in 0usize..4096,
        len in 0usize..4096,
        bs_log in 5u32..8, // 32..128
    ) {
        let bs = 1usize << bs_log;
        let hi = lo + len;
        let s = block_subset(lo, hi, bs);
        // head + whole blocks + tail exactly tile [lo, hi)
        prop_assert_eq!(s.head_bytes + s.block_count() * bs + s.tail_bytes, hi - lo);
        // whole blocks lie inside [lo, hi) and are aligned
        if !s.is_empty() {
            let (blo, bhi) = s.byte_range(bs);
            prop_assert!(blo >= lo && bhi <= hi);
            prop_assert_eq!(blo % bs, 0);
            prop_assert_eq!(bhi % bs, 0);
        }
    }

    #[test]
    fn linearize_covers_section_exactly(
        rows in 1usize..12,
        cols in 1usize..12,
        r0 in range_strategy(),
        r1 in range_strategy(),
    ) {
        let l = ColumnMajor::new(&[rows, cols]);
        // Clamp ranges into bounds and force dim0 dense so linearize accepts.
        let d0 = Range::new(r0.lo.rem_euclid(rows as i64), r0.hi.rem_euclid(rows as i64));
        let d1 = Range::strided(
            r1.lo.rem_euclid(cols as i64),
            r1.hi.rem_euclid(cols as i64),
            r1.stride,
        );
        let sec = Section::new(vec![d0, d1]);
        if let Some(lr) = l.linearize(&sec) {
            let mut offsets: HashSet<usize> = HashSet::new();
            for (start, len) in lr.iter_runs() {
                for o in start..start + len {
                    prop_assert!(offsets.insert(o), "linearized runs overlap at {}", o);
                }
            }
            let expected: HashSet<usize> =
                sec.points().iter().map(|pt| l.offset(pt)).collect();
            prop_assert_eq!(offsets, expected);
        }
    }
}
