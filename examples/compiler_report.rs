//! Print the compiler's communication analysis for two suite programs —
//! the `-Minfo`-style view of §4.1/§4.2 decisions: which sections move,
//! which blocks go under compiler control, and what stays with the
//! default protocol (boundary words, indirect references).
//!
//!     cargo run --release --example compiler_report

use fgdsm::apps::{irreg, jacobi, Scale};
use fgdsm::hpf::{analyze_program, render};
use fgdsm::section::Env;

fn main() {
    let nprocs = 4;
    let wpb = 16; // 128-byte blocks

    let p = jacobi::Params::at(Scale::Test);
    let prog = jacobi::build(&p);
    println!("=== jacobi ({}x{}) ===", p.n, p.m);
    let reports = analyze_program(&prog, &Env::new(), nprocs, wpb);
    print!("{}", render(&prog, &reports, nprocs));

    let p = irreg::Params::at(Scale::Test);
    let prog = irreg::build(&p);
    println!("\n=== irreg ({} elements) ===", p.n);
    let reports = analyze_program(&prog, &Env::new(), nprocs, wpb);
    print!("{}", render(&prog, &reports, nprocs));

    println!(
        "\nnote: jacobi's whole-column ghosts are mostly compiler-controlled;\n\
         irreg's gather is flagged unanalyzable and left to the default\n\
         protocol, while its 1-element stencil ghosts never fill a block\n\
         (shmem_limits keeps them boundary words)."
    );
}
