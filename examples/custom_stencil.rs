//! Build your own HPF program against the public API: a 9-point stencil
//! with a convergence reduction, run across all executors.
//!
//!     cargo run --release --example custom_stencil
//!
//! Demonstrates: declaring distributed arrays, INDEPENDENT loops with
//! affine references, reductions into replicated scalars, and how the
//! three backends (unoptimized DSM, compiler-optimized DSM, message
//! passing) compare on a workload the paper never measured.

use fgdsm::hpf::{
    execute, ARef, ArrayId, CompDist, Dist, ExecConfig, Kernel, KernelCtx, ParLoop, Program,
    ReduceSpec, Stmt, Subscript,
};
use fgdsm::section::{SymRange, Var};
use fgdsm::tempest::ReduceOp;

const GRID: ArrayId = ArrayId(0);
const NEXT: ArrayId = ArrayId(1);
const N: usize = 256;
const ITERS: i64 = 12;

fn init(ctx: &mut KernelCtx) {
    let g = ctx.h(GRID);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[g.at2(i, j)] = if (i + j) % 17 == 0 { 100.0 } else { 0.0 };
        }
    }
}

fn sweep(ctx: &mut KernelCtx) {
    let g = ctx.h(GRID);
    let n = ctx.h(NEXT);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            // 9-point box blur.
            let mut s = 0.0;
            for dj in -1..=1 {
                for di in -1..=1 {
                    s += ctx.mem[g.at2(i + di, j + dj)];
                }
            }
            ctx.mem[n.at2(i, j)] = s / 9.0;
        }
    }
}

fn copy_back(ctx: &mut KernelCtx) {
    let g = ctx.h(GRID);
    let n = ctx.h(NEXT);
    let mut delta = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let d = ctx.mem[n.at2(i, j)] - ctx.mem[g.at2(i, j)];
            delta += d.abs();
            ctx.mem[g.at2(i, j)] = ctx.mem[n.at2(i, j)];
        }
    }
    ctx.partial = delta;
}

fn build() -> Program {
    let t = Var("t");
    let mut b = Program::builder();
    let grid = b.array("grid", &[N, N], Dist::Block);
    let next = b.array("next", &[N, N], Dist::Block);
    assert_eq!((grid, next), (GRID, NEXT));
    b.scalar("delta", 0.0);
    let nn = N as i64;
    let here = vec![Subscript::loop_var(0), Subscript::loop_var(1)];
    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![SymRange::new(0, nn - 1), SymRange::new(0, nn - 1)],
        dist: CompDist::Owner(grid),
        refs: vec![ARef::write(grid, here.clone())],
        kernel: Kernel::new(init),
        cost_per_iter_ns: 60,
        reduction: None,
    }));
    // A 9-point stencil needs all four corners too: eight read refs.
    let mut sweep_refs = vec![ARef::write(next, here.clone())];
    for dj in -1..=1i64 {
        for di in -1..=1i64 {
            sweep_refs.push(ARef::read(
                grid,
                vec![Subscript::Loop(0, di), Subscript::Loop(1, dj)],
            ));
        }
    }
    b.stmt(Stmt::Time {
        var: t,
        count: ITERS,
        body: vec![
            Stmt::Par(ParLoop {
                name: "sweep",
                iter: vec![SymRange::new(1, nn - 2), SymRange::new(1, nn - 2)],
                dist: CompDist::Owner(next),
                refs: sweep_refs,
                kernel: Kernel::new(sweep),
                cost_per_iter_ns: 900,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "copy",
                iter: vec![SymRange::new(1, nn - 2), SymRange::new(1, nn - 2)],
                dist: CompDist::Owner(grid),
                refs: vec![
                    ARef::read(next, here.clone()),
                    ARef::read(grid, here.clone()),
                    ARef::write(grid, here.clone()),
                ],
                kernel: Kernel::new(copy_back),
                cost_per_iter_ns: 220,
                reduction: Some(ReduceSpec {
                    op: ReduceOp::Sum,
                    target: "delta",
                }),
            }),
        ],
    });
    b.build()
}

fn main() {
    let program = build();
    println!("9-point box blur, {N}x{N}, {ITERS} iterations, 8 nodes\n");
    println!(
        "{:<18}{:>12}{:>12}{:>14}{:>12}",
        "backend", "time (s)", "comm (s)", "misses/node", "messages"
    );
    let mut results = Vec::new();
    for (name, cfg) in [
        ("sm-unopt", ExecConfig::sm_unopt(8)),
        ("sm-opt", ExecConfig::sm_opt(8)),
        ("mp", ExecConfig::mp(8)),
    ] {
        let r = execute(&program, &cfg);
        println!(
            "{:<18}{:>12.4}{:>12.4}{:>14.0}{:>12}",
            name,
            r.total_s(),
            r.report.comm_s(),
            r.report.avg_misses(),
            r.report.total_msgs()
        );
        results.push(r);
    }
    // All three agree on the data.
    let a = results[0].array(&program, GRID);
    for r in &results[1..] {
        assert_eq!(a, r.array(&program, GRID));
    }
    println!(
        "\nfinal smoothing delta: {:.6e}",
        results[0].scalars["delta"]
    );
    println!("all backends produced identical data ✓");
}
