//! Quickstart: run the jacobi benchmark on a simulated 8-node cluster,
//! unoptimized vs. compiler-optimized, and print the paper's headline
//! quantities (execution time, communication time, per-node miss count).
//!
//!     cargo run --release --example quickstart

use fgdsm::apps::{jacobi, Scale};
use fgdsm::hpf::{execute, ExecConfig};

fn main() {
    let params = jacobi::Params::at(Scale::Bench);
    let program = jacobi::build(&params);
    println!(
        "jacobi {}x{}, {} iterations, 8 nodes, 128-byte blocks\n",
        params.n, params.m, params.iters
    );

    let unopt = execute(&program, &ExecConfig::sm_unopt(8));
    let opt = execute(&program, &ExecConfig::sm_opt(8));

    // Identical numerics, very different communication behaviour.
    assert_eq!(
        unopt.array(&program, jacobi::A),
        opt.array(&program, jacobi::A)
    );

    println!("{:<26}{:>14}{:>14}", "", "unoptimized", "optimized");
    println!(
        "{:<26}{:>14.3}{:>14.3}",
        "execution time (s)",
        unopt.total_s(),
        opt.total_s()
    );
    println!(
        "{:<26}{:>14.3}{:>14.3}",
        "communication time (s)",
        unopt.report.comm_s(),
        opt.report.comm_s()
    );
    println!(
        "{:<26}{:>14.1}{:>14.1}",
        "misses per node (K)",
        unopt.report.avg_misses() / 1e3,
        opt.report.avg_misses() / 1e3
    );
    println!(
        "{:<26}{:>14}{:>14}",
        "messages (total)",
        unopt.report.total_msgs(),
        opt.report.total_msgs()
    );
    println!(
        "\ncompiler-directed calls: {} sends, {} blocks pushed, \
         {} implicit_writable ({} memo hits possible)",
        opt.ctl.send_range,
        opt.ctl.blocks_pushed,
        opt.ctl.implicit_writable,
        opt.ctl.implicit_writable.saturating_sub(1)
    );
    println!(
        "\nmiss reduction: {:.1}%   execution-time reduction: {:.1}%",
        100.0 * (1.0 - opt.report.avg_misses() / unopt.report.avg_misses()),
        100.0 * (1.0 - opt.total_s() / unopt.total_s())
    );
    println!("checksum: {:.6e}", opt.scalars["checksum"]);
}
