//! Sweep the coherence block size (Tempest supports 32–128 bytes) and
//! watch the trade-off the paper discusses in §3/§6: small blocks mean
//! more transfer units (more protocol events), large blocks mean more
//! boundary ("edge effect") misses the compiler cannot capture — the
//! effect that caps `grav` at a 38% miss reduction.
//!
//!     cargo run --release --example blocksize_explorer

use fgdsm::apps::{grav, jacobi, Scale};
use fgdsm::hpf::{execute, ExecConfig};
use fgdsm::tempest::CostModel;

fn main() {
    println!("block-size sweep, 8 nodes (paper hardware uses 128 bytes)\n");
    for (name, prog) in [
        ("jacobi", jacobi::build(&jacobi::Params::at(Scale::Bench))),
        ("grav", grav::build(&grav::Params::at(Scale::Bench))),
    ] {
        println!("{name}:");
        println!(
            "  {:<8}{:>14}{:>14}{:>16}{:>12}",
            "block", "unopt misses", "opt misses", "miss reduction", "opt time"
        );
        for block_bytes in [32usize, 64, 128] {
            let cost = CostModel {
                block_bytes,
                ..CostModel::paper_dual_cpu()
            };
            let mut unopt_cfg = ExecConfig::sm_unopt(8);
            unopt_cfg.cost = cost.clone();
            let mut opt_cfg = ExecConfig::sm_opt(8);
            opt_cfg.cost = cost;
            let unopt = execute(&prog, &unopt_cfg);
            let opt = execute(&prog, &opt_cfg);
            assert_eq!(unopt.data, opt.data, "{name}@{block_bytes}: data mismatch");
            println!(
                "  {:<8}{:>14.0}{:>14.0}{:>15.1}%{:>11.3}s",
                format!("{block_bytes}B"),
                unopt.report.avg_misses(),
                opt.report.avg_misses(),
                100.0 * (1.0 - opt.report.avg_misses() / unopt.report.avg_misses()),
                opt.total_s(),
            );
        }
        println!();
    }
    println!(
        "note how the small-extent, reduction-heavy app (grav) loses much\n\
         more of its miss reduction to boundary blocks as blocks grow —\n\
         the paper's §6 explanation for grav's 38% vs jacobi's 96.7%."
    );
}
