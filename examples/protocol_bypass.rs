//! The §4.2 contract by hand: drive the compiler-directed primitives
//! directly against the DSM, next to the same producer–consumer exchange
//! through the default protocol, and count every message.
//!
//!     cargo run --release --example protocol_bypass
//!
//! This is Figure 1 of the paper as executable code: (a) the default
//! coherence scheme's message chains, (b) the direct update message with
//! a final step to restore coherence.

use fgdsm::protocol::Dsm;
use fgdsm::tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};

const BLOCKS: usize = 64; // one 8 KB producer buffer = 64 × 128-byte blocks
const STEPS: usize = 10; // repeated producer→consumer time steps

fn new_dsm() -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(BLOCKS * cfg.words_per_block());
    Dsm::new(Cluster::new(4, cfg, &layout, HomePolicy::RoundRobin))
}

/// Producer (node 1) writes all blocks; consumer (node 2) reads them —
/// through the default invalidation protocol.
fn default_protocol() -> Dsm {
    let mut d = new_dsm();
    for _ in 0..STEPS {
        for b in 0..BLOCKS {
            d.write_access_excl(1, b);
        }
        let (s, e) = (0, BLOCKS * d.cluster.words_per_block());
        for w in s..e {
            d.cluster.node_mem_mut(1)[w] += 1.0;
        }
        d.release_barrier();
        for b in 0..BLOCKS {
            d.read_access(2, b);
        }
        d.release_barrier();
    }
    d
}

/// The same exchange under compiler control: mk_writable once, memoized
/// implicit_writable, bulk sender-initiated pushes.
fn compiler_controlled() -> Dsm {
    let mut d = new_dsm();
    // One-time: producer takes the blocks (Figure 2B) …
    d.mk_writable(1, 0, BLOCKS);
    d.release_barrier();
    for _ in 0..STEPS {
        // … consumer tags the landing area (memoized after step 1, §4.3) …
        d.implicit_writable(2, 0, BLOCKS, true);
        d.release_barrier();
        // … producer computes and pushes in bulk payloads (Figure 2D).
        let (s, e) = (0, BLOCKS * d.cluster.words_per_block());
        for w in s..e {
            d.cluster.node_mem_mut(1)[w] += 1.0;
        }
        d.send_range(1, &[2], 0, BLOCKS, true);
        d.ready_to_recv(2);
        d.release_barrier();
    }
    // Restore global coherence before anyone else touches the data
    // (Figure 2F): the consumer discards its compiler-controlled copies.
    d.implicit_invalidate(2, 0, BLOCKS);
    d.release_barrier();
    d.check_consistency()
        .expect("directory consistent after contract");
    d
}

fn main() {
    println!("producer→consumer, {BLOCKS} blocks × {STEPS} steps, 128-byte blocks\n");
    let a = default_protocol();
    let b = compiler_controlled();

    // Same data arrived either way.
    let words = BLOCKS * a.cluster.words_per_block();
    assert_eq!(
        a.cluster.node_mem(2)[..words],
        b.cluster.node_mem(2)[..words]
    );

    let report = |name: &str, d: &Dsm| {
        let r = d.cluster.report();
        println!(
            "{:<22} misses: {:>5}   messages: {:>6}   bytes: {:>9}   time: {:>9.3} ms",
            name,
            r.nodes.iter().map(|n| n.misses()).sum::<u64>(),
            r.total_msgs(),
            r.total_bytes(),
            r.total_s() * 1e3,
        );
    };
    report("default protocol", &a);
    report("compiler-controlled", &b);

    let ra = a.cluster.report();
    let rb = b.cluster.report();
    println!(
        "\nmessage reduction: {:.1}×   time reduction: {:.1}%",
        ra.total_msgs() as f64 / rb.total_msgs() as f64,
        100.0 * (1.0 - rb.total_s() / ra.total_s())
    );
    println!("consumer data verified identical ✓");
}
