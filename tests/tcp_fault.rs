//! Fault tolerance of the socket-backed `tcp` backend: killing or
//! wedging an `fgdsm-node` worker process mid-superstep must surface a
//! clean *typed* error at the coordinator — [`WireError::PeerGone`] on
//! EOF, [`WireError::Timeout`] once the recv deadline fires — within a
//! bounded wall time, with no hang and no partial trace artifact.
//!
//! The tests mutate process-global environment (`FGDSM_NET_TIMEOUT_MS`,
//! `FGDSM_TRACE`), so they serialize on one mutex.

use fgdsm::hpf::{try_execute, ExecConfig, ExecError, InjectConfig};
use fgdsm::net::NodeFault;
use fgdsm::protocol::WireError;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static ENV_LOCK: Mutex<()> = Mutex::new(());

const NPROCS: usize = 2;

fn comm_heavy_program() -> fgdsm::hpf::Program {
    // Jacobi at test scale: every superstep ships boundary rows between
    // the two nodes, so the faulted node is guaranteed to see batches.
    let params = fgdsm::apps::jacobi::Params::at(fgdsm::apps::Scale::Test);
    fgdsm::apps::jacobi::build(&params)
}

fn tcp_cfg(fault: NodeFault, node: u32) -> ExecConfig {
    ExecConfig::tcp(NPROCS).serial().with_inject(InjectConfig {
        tcp_node_fault: Some((node, fault)),
        ..InjectConfig::default()
    })
}

/// Run one faulted execution under a watchdog: returns the error and
/// checks the run neither hung past `deadline` nor left a partial
/// `FGDSM_TRACE` artifact behind.
fn run_faulted(fault: NodeFault, node: u32, deadline: Duration) -> ExecError {
    let trace_path = std::env::temp_dir().join(format!(
        "fgdsm-tcp-fault-{}-{node}.trace.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&trace_path);
    std::env::set_var("FGDSM_TRACE", &trace_path);
    let prog = comm_heavy_program();
    let t0 = Instant::now();
    let r = try_execute(&prog, &tcp_cfg(fault, node));
    let elapsed = t0.elapsed();
    std::env::remove_var("FGDSM_TRACE");
    assert!(
        elapsed < deadline,
        "faulted run must fail within {deadline:?}, took {elapsed:?}"
    );
    assert!(
        !trace_path.exists(),
        "a failed run must not leave a partial trace artifact at {}",
        trace_path.display()
    );
    r.expect_err("a killed/wedged node must fail the run")
}

/// A node that exits mid-superstep (EOF on the coordinator's next read)
/// surfaces as a typed `PeerGone` naming that node.
#[test]
fn killed_node_yields_typed_peer_gone() {
    let _g = ENV_LOCK.lock().unwrap();
    if !fgdsm::hpf::tcp_available() {
        eprintln!("notice: sandbox forbids sockets; skipping killed_node_yields_typed_peer_gone");
        return;
    }
    let e = run_faulted(NodeFault::ExitAfterBatches(0), 1, Duration::from_secs(60));
    match e {
        ExecError::Wire(WireError::PeerGone(p)) => {
            assert_eq!(p, 1, "error must name the dead node")
        }
        other => panic!("want Wire(PeerGone(1)), got {other:?}"),
    }
}

/// A node that stops replying (process alive, socket open) trips the
/// coordinator's recv deadline and surfaces as a typed `Timeout` naming
/// that node — the explicit non-EOF half of the failure semantics.
#[test]
fn wedged_node_yields_typed_timeout_within_deadline() {
    let _g = ENV_LOCK.lock().unwrap();
    if !fgdsm::hpf::tcp_available() {
        eprintln!(
            "notice: sandbox forbids sockets; skipping wedged_node_yields_typed_timeout_within_deadline"
        );
        return;
    }
    // Short recv deadline so the wedge converts to a typed error fast;
    // the watchdog bound proves the deadline (not a hang) ended the run.
    std::env::set_var("FGDSM_NET_TIMEOUT_MS", "500");
    let e = run_faulted(NodeFault::WedgeAfterBatches(0), 1, Duration::from_secs(30));
    std::env::remove_var("FGDSM_NET_TIMEOUT_MS");
    match e {
        ExecError::Wire(WireError::Timeout(p)) => {
            assert_eq!(p, 1, "error must name the wedged node")
        }
        other => panic!("want Wire(Timeout(1)), got {other:?}"),
    }
}

/// The same fleet-spawning path with no fault armed must succeed and
/// match the in-process `sm_opt` backend bit for bit — the positive
/// control for the two failure tests above.
#[test]
fn unfaulted_tcp_run_matches_sm_opt() {
    let _g = ENV_LOCK.lock().unwrap();
    if !fgdsm::hpf::tcp_available() {
        eprintln!("notice: sandbox forbids sockets; skipping unfaulted_tcp_run_matches_sm_opt");
        return;
    }
    let prog = comm_heavy_program();
    let tcp = try_execute(&prog, &ExecConfig::tcp(NPROCS).serial()).expect("clean tcp run");
    let smopt = fgdsm::hpf::execute(&prog, &ExecConfig::sm_opt(NPROCS).serial());
    assert_eq!(tcp.report.to_json(), smopt.report.to_json());
    assert_eq!(tcp.data, smopt.data);
    assert!(
        tcp.wire_frames > 0,
        "jacobi must route envelopes over the sockets"
    );
    assert!(
        tcp.wire_route_ns() > 0,
        "socket round-trips must accrue measured route time"
    );
    assert_eq!(
        smopt.wire_route_ns(),
        0,
        "the in-process fast path never routes"
    );
}
