//! Cross-crate integration: the §4.2 contract driven by hand against the
//! protocol, interleaved with default-protocol traffic, under different
//! home policies and block sizes — the scenarios the compiler-generated
//! schedule produces, exercised at the library-API level.

use fgdsm::protocol::Dsm;
use fgdsm::tempest::{Access, Cluster, CostModel, HomePolicy, SegmentLayout};

fn dsm_with(nprocs: usize, block_bytes: usize, policy: HomePolicy) -> Dsm {
    let cfg = CostModel {
        block_bytes,
        ..CostModel::paper_dual_cpu()
    };
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(16 * 1024);
    Dsm::new(Cluster::new(nprocs, cfg, &layout, policy))
}

/// The full contract, repeated over a time loop with a third party
/// reading the data through the default protocol after the compiler
/// releases control — Figure 2's final consistency claim.
#[test]
fn contract_then_default_protocol_interoperate() {
    for policy in [HomePolicy::RoundRobin, HomePolicy::Blocked] {
        let mut d = dsm_with(4, 128, policy);
        let blocks = 32;
        let words = blocks * d.cluster.words_per_block();

        // Owner node 1 produces, reader node 2 consumes, 3 steps.
        d.mk_writable(1, 0, blocks);
        d.release_barrier();
        for step in 0..3 {
            d.implicit_writable(2, 0, blocks, true);
            d.release_barrier();
            for w in 0..words {
                d.cluster.node_mem_mut(1)[w] = (step * words + w) as f64;
            }
            d.send_range(1, &[2], 0, blocks, true);
            d.ready_to_recv(2);
            assert_eq!(
                d.cluster.node_mem(2)[words - 1],
                (step * words + words - 1) as f64
            );
            d.release_barrier();
        }
        // Compiler releases control; directory still says Excl(owner 1).
        d.implicit_invalidate(2, 0, blocks);
        d.release_barrier();
        d.check_consistency().unwrap();

        // A third party now reads through the default protocol and must
        // see the last produced values.
        for b in 0..blocks {
            d.read_access(3, b);
        }
        assert_eq!(d.cluster.node_mem(3)[0], (2 * words) as f64);
        assert_eq!(
            d.cluster.node_mem(3)[words - 1],
            (2 * words + words - 1) as f64
        );
        d.release_barrier();
        d.check_consistency().unwrap();
    }
}

/// Non-owner writes: implicit_writable + send to the writer, then
/// flush_range back — the owner must end with the merged data and the
/// directory must record it.
#[test]
fn non_owner_write_roundtrip() {
    let mut d = dsm_with(4, 128, HomePolicy::RoundRobin);
    let blocks = 8;
    let words = blocks * d.cluster.words_per_block();
    // Owner 0 initializes.
    d.mk_writable(0, 0, blocks);
    for w in 0..words {
        d.cluster.node_mem_mut(0)[w] = w as f64;
    }
    d.release_barrier();
    // Writer 3 receives current data, overwrites half of it, flushes.
    d.implicit_writable(3, 0, blocks, false);
    d.release_barrier();
    d.send_range(0, &[3], 0, blocks, true);
    d.ready_to_recv(3);
    for w in 0..words / 2 {
        d.cluster.node_mem_mut(3)[w] = -(w as f64);
    }
    d.flush_range(3, 0, 0, blocks, true);
    d.release_barrier();
    d.check_consistency().unwrap();
    assert_eq!(d.cluster.node_mem(0)[3], -3.0);
    assert_eq!(d.cluster.node_mem(0)[words - 1], (words - 1) as f64);
    assert_eq!(d.cluster.tag(3, 0), Access::Invalid);
    assert!(d.dir_state(0).is_excl_by(0));
}

/// The contract at every supported block size.
#[test]
fn contract_all_block_sizes() {
    for bs in [32usize, 64, 128] {
        let mut d = dsm_with(2, bs, HomePolicy::RoundRobin);
        let blocks = 256 / (bs / 8); // 256 words worth
        d.mk_writable(1, 0, blocks);
        d.release_barrier();
        d.implicit_writable(0, 0, blocks, false);
        d.release_barrier();
        for w in 0..256 {
            d.cluster.node_mem_mut(1)[w] = (w * w) as f64;
        }
        d.send_range(1, &[0], 0, blocks, true);
        d.ready_to_recv(0);
        assert_eq!(d.cluster.node_mem(0)[255], (255 * 255) as f64, "bs={bs}");
        d.implicit_invalidate(0, 0, blocks);
        d.release_barrier();
        d.check_consistency().unwrap();
    }
}

/// Many readers: one owner pushes the same range to every other node
/// (lu's broadcast pattern) and each gets a private valid copy.
#[test]
fn one_to_all_push() {
    let mut d = dsm_with(8, 128, HomePolicy::RoundRobin);
    let blocks = 16;
    let words = blocks * 16;
    d.mk_writable(5, 0, blocks);
    for w in 0..words {
        d.cluster.node_mem_mut(5)[w] = 1000.0 + w as f64;
    }
    d.release_barrier();
    let readers: Vec<usize> = (0..8).filter(|&n| n != 5).collect();
    for &r in &readers {
        d.implicit_writable(r, 0, blocks, false);
    }
    d.release_barrier();
    d.send_range(5, &readers, 0, blocks, true);
    for &r in &readers {
        d.ready_to_recv(r);
        assert_eq!(
            d.cluster.node_mem(r)[words - 1],
            1000.0 + (words - 1) as f64
        );
    }
    for &r in &readers {
        d.implicit_invalidate(r, 0, blocks);
    }
    d.release_barrier();
    d.check_consistency().unwrap();
    assert!(d.dir_state(0).is_excl_by(5));
}

/// Default-protocol stress: rotating exclusive ownership through all
/// nodes keeps data and directory coherent.
#[test]
fn migratory_ownership_rotation() {
    let mut d = dsm_with(6, 128, HomePolicy::RoundRobin);
    let b = 3; // one block, home = page 0's home
    let (s, _) = d.cluster.block_words(b);
    for round in 0..18 {
        let node = round % 6;
        d.write_access_excl(node, b);
        d.cluster.node_mem_mut(node)[s] += 1.0;
        d.release_barrier();
        d.check_consistency().unwrap();
    }
    // Final value visible to a fresh reader.
    d.read_access(1, b);
    assert_eq!(d.cluster.node_mem(1)[s], 18.0);
}
