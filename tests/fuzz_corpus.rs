//! Tier-1 differential fuzz corpus.
//!
//! Runs a fixed, seeded corpus of randomly generated mini-HPF programs
//! through the cross-backend differential oracle (reference interpreter
//! vs `sm_unopt`, `sm_opt` at every optimization-toggle combination,
//! and `mp`, each serial and threaded). The corpus is deterministic:
//! case `k` always uses seed `case_seed(BASE_SEED, k)`, so a failure
//! message's seed can be replayed with `FGDSM_FUZZ_CASES`:
//!
//! ```text
//! FGDSM_FUZZ_CASES=500 cargo test --test fuzz_corpus
//! ```
//!
//! On divergence the harness shrinks the case and panics with the seed
//! and a standalone Rust reproducer.

use fgdsm_fuzz::{case_seed, check_case, check_case_tcp};
use fgdsm_testkit::BASE_SEED;

fn corpus_cases() -> u64 {
    std::env::var("FGDSM_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

fn tcp_corpus_cases() -> u64 {
    std::env::var("FGDSM_FUZZ_TCP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
}

#[test]
fn differential_corpus() {
    let n = corpus_cases();
    for case in 0..n {
        check_case(case_seed(BASE_SEED, case));
    }
}

/// A separately sized slice of the same seeded corpus replayed over the
/// socket-backed `tcp` backend: every transfer framed over loopback to
/// spawned `fgdsm-node` processes, results bitwise against the
/// reference and artifacts byte-identical to `sm_opt[full]` serial.
/// Smaller by default (`FGDSM_FUZZ_TCP_CASES`, 25) because each case
/// spawns a process fleet; seeds match `differential_corpus` case for
/// case, so a tcp-only failure is immediately comparable with its
/// in-process twin. Skips with a notice when the sandbox forbids
/// sockets.
#[test]
fn differential_corpus_tcp() {
    if !fgdsm::hpf::tcp_available() {
        eprintln!("notice: sandbox forbids sockets; skipping differential_corpus_tcp");
        return;
    }
    let n = tcp_corpus_cases();
    for case in 0..n {
        check_case_tcp(case_seed(BASE_SEED, case));
    }
}
