//! Cross-crate integration: qualitative shapes of the paper's evaluation
//! at test scale, through the public facade crate.

use fgdsm::apps::{cg, grav, jacobi, lu, pde, shallow, suite, Scale};
use fgdsm::hpf::{execute, ExecConfig, OptLevel};

const NP: usize = 8;

#[test]
fn suite_runs_every_backend_and_agrees() {
    for spec in suite(Scale::Test) {
        let unopt = execute(&spec.program, &ExecConfig::sm_unopt(NP));
        let opt = execute(&spec.program, &ExecConfig::sm_opt(NP));
        let mp = execute(&spec.program, &ExecConfig::mp(NP));
        assert_eq!(unopt.data, opt.data, "{}: unopt vs opt data", spec.name);
        assert_eq!(unopt.data, mp.data, "{}: unopt vs mp data", spec.name);
        assert!(
            opt.report.avg_misses() <= unopt.report.avg_misses(),
            "{}: opt must not add misses",
            spec.name
        );
    }
}

#[test]
fn optimization_reduces_execution_time_across_suite() {
    // Figure 3's core claim at test scale: opt total ≤ unopt total for
    // every application, in both cpu configurations.
    for spec in suite(Scale::Test) {
        for single in [false, true] {
            let mk = |backend: ExecConfig| {
                if single {
                    backend.single_cpu()
                } else {
                    backend
                }
            };
            let unopt = execute(&spec.program, &mk(ExecConfig::sm_unopt(NP)));
            let opt = execute(&spec.program, &mk(ExecConfig::sm_opt(NP)));
            // grav at *test* scale is dominated by reductions and call
            // overheads (the paper's own worst case: +3% only); the real
            // claim is enforced at benchmark scale by fig3_speedups.
            let slack = if matches!(spec.name, "grav" | "lu") {
                1.25
            } else {
                1.02
            };
            assert!(
                opt.total_s() <= unopt.total_s() * slack,
                "{} (single={single}): opt {:.4}s vs unopt {:.4}s",
                spec.name,
                opt.total_s(),
                unopt.total_s()
            );
        }
    }
}

#[test]
fn opt_levels_are_monotone_for_stencils() {
    // Figure 4's shape: each added optimization must not hurt.
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let unopt = execute(&prog, &ExecConfig::sm_unopt(NP));
    let base = execute(&prog, &ExecConfig::sm_opt(NP).with_opt(OptLevel::base()));
    let bulk = execute(
        &prog,
        &ExecConfig::sm_opt(NP).with_opt(OptLevel::base_bulk()),
    );
    let full = execute(&prog, &ExecConfig::sm_opt(NP).with_opt(OptLevel::full()));
    assert!(base.total_s() <= unopt.total_s());
    assert!(bulk.total_s() <= base.total_s());
    assert!(full.total_s() <= bulk.total_s());
}

#[test]
fn pre_skips_grav_gradient_moments() {
    let prog = grav::build(&grav::Params::at(Scale::Test));
    let pre = execute(
        &prog,
        &ExecConfig::sm_opt(NP).with_opt(OptLevel::full_pre()),
    );
    let full = execute(&prog, &ExecConfig::sm_opt(NP));
    assert!(pre.pre_skipped > 0, "gradient moments should be skippable");
    assert!(pre.total_s() <= full.total_s());
    assert_eq!(pre.data, full.data);
}

#[test]
fn messages_shrink_with_bulk_across_suite() {
    for spec in suite(Scale::Test) {
        let base = execute(
            &spec.program,
            &ExecConfig::sm_opt(NP).with_opt(OptLevel::base()),
        );
        let bulk = execute(
            &spec.program,
            &ExecConfig::sm_opt(NP).with_opt(OptLevel::base_bulk()),
        );
        assert!(
            bulk.report.total_msgs() <= base.report.total_msgs(),
            "{}: bulk transfer cannot send more messages",
            spec.name
        );
    }
}

#[test]
fn per_app_checks() {
    // A few invariants that tie executors to application semantics.
    let p = cg::Params::at(Scale::Test);
    let r = execute(&cg::build(&p), &ExecConfig::sm_opt(NP));
    let (_, rho) = cg::reference(&p, NP);
    assert!((r.scalars["rho"] - rho).abs() <= rho.abs() * 1e-9);

    let p = lu::Params::at(Scale::Test);
    let r = execute(&lu::build(&p), &ExecConfig::sm_opt(NP));
    assert_eq!(r.array(&lu::build(&p), lu::A), lu::reference(&p));

    let p = pde::Params::at(Scale::Test);
    let r = execute(&pde::build(&p), &ExecConfig::mp(NP));
    let (uref, _) = pde::reference(&p);
    assert_eq!(r.array(&pde::build(&p), pde::U), uref);

    let p = shallow::Params::at(Scale::Test);
    let r = execute(&shallow::build(&p), &ExecConfig::sm_unopt(NP).single_cpu());
    assert_eq!(
        r.array(&shallow::build(&p), shallow::P),
        shallow::reference(&p)
    );
}

#[test]
fn node_count_sweep_is_consistent() {
    // Data identical at 1, 2, 4, 8 nodes for reduction-free jacobi, and
    // parallel time decreases from 2 to 8 nodes.
    let prog = jacobi::build(&jacobi::Params::at(Scale::Test));
    let base = execute(&prog, &ExecConfig::sm_opt(1));
    let mut last_time = f64::INFINITY;
    for np in [2usize, 4, 8] {
        let r = execute(&prog, &ExecConfig::sm_opt(np));
        assert_eq!(r.data, base.data, "np={np}");
        assert!(
            r.total_s() < last_time * 1.05,
            "np={np}: time should not grow much with nodes"
        );
        last_time = r.total_s();
    }
}

#[test]
fn table2_metadata_is_stable() {
    let apps = suite(Scale::Paper);
    assert_eq!(apps.len(), 6);
    for a in &apps {
        assert!(a.memory_mb() > 0.0);
        assert!(!a.problem.is_empty());
        assert!(a.program.validate().is_ok());
    }
}
