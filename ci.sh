#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
# Runs offline — no network, no external services.
set -eux

cargo build --release
# Tier-1 suite under both superstep parallelism modes: serial and 4
# threads (FGDSM_PAR drives the compute phase AND the resolve phase's
# plan/apply stage). Reports are virtual-time and must be identical
# either way.
FGDSM_PAR=0 cargo test -q
FGDSM_PAR=4 cargo test -q
cargo test -q --workspace
# Host-perf harness smoke: one timed run of the suite at tiny scale must
# produce a parseable, full-matrix host_perf.json (written to a scratch
# path so the committed bench-scale artifact is untouched), then the
# smoke suite validates the committed artifact too.
FGDSM_TEST=1 FGDSM_SCALE=1,8 FGDSM_BENCH_RUNS=1 FGDSM_BENCH_OUT=target/host_perf_smoke.json \
    cargo run --release -q -p fgdsm-bench --bin host_perf
cargo test -q -p fgdsm-bench --test host_perf_smoke
# Perf gate, two halves. `smoke`: jacobi + pde at bench scale stretched
# by factor 8 — the regime where per-superstep volume amortizes every
# fixed threading cost, so threading wins on multi-core hosts and must
# at least break even on single-core ones — fail if the threaded
# median exceeds 1.2x the serial median. `trend`: the working
# tree's committed host_perf.json must not regress its threads/serial
# ratios by more than 1.25x against the artifact committed at HEAD
# (missing or old-format previous artifacts are tolerated).
cargo run --release -q -p fgdsm-bench --bin perf_gate -- smoke
git show HEAD:bench_results/host_perf.json > target/host_perf_prev.json 2>/dev/null || true
cargo run --release -q -p fgdsm-bench --bin perf_gate -- trend target/host_perf_prev.json
# Wire-seam gate: the chan backend (every transfer enveloped, carried
# over channels and decoded back — no shared-memory shortcut) must stay
# within 2x of sm_opt's serial median on the same stretched problems.
cargo run --release -q -p fgdsm-bench --bin perf_gate -- chan
# Profile-report smoke: the jacobi run self-asserts a well-formed
# Chrome-trace export, a per-loop table that sums exactly to the
# whole-run report, and the co-residency (false-sharing) demo; the
# emitted table must be non-empty. The Chrome export written via
# FGDSM_CHROME must also be byte-identical between serial and threaded
# runs (the in-process determinism suite checks the same property for
# every app and backend).
FGDSM_TEST=1 FGDSM_PROFILE_OUT=target/profile_smoke.json \
    FGDSM_CHROME=target/profile_chrome_par0.json FGDSM_PAR=0 \
    cargo run --release -q -p fgdsm-bench --bin profile_report -- jacobi \
    > target/profile_report_smoke.txt
grep -q "sweep" target/profile_report_smoke.txt
FGDSM_TEST=1 FGDSM_PROFILE_OUT=target/profile_smoke.json \
    FGDSM_CHROME=target/profile_chrome_par4.json FGDSM_PAR=4 \
    cargo run --release -q -p fgdsm-bench --bin profile_report -- jacobi > /dev/null
cmp target/profile_chrome_par0.json target/profile_chrome_par4.json
# Wire-format determinism: the whole determinism suite again with every
# backend forced through envelope encode/decode (FGDSM_WIRE=strict), and
# the chan profile-report smoke with its wire-accounting invariants
# (frames > 0, payload <= cluster bytes_sent, clean heatmap attribution).
FGDSM_WIRE=strict cargo test -q -p fgdsm-bench --test determinism
FGDSM_TEST=1 FGDSM_BACKEND=chan FGDSM_PROFILE_OUT=target/profile_chan_smoke.json \
    cargo run --release -q -p fgdsm-bench --bin profile_report -- jacobi \
    > target/profile_chan_smoke.txt
grep -q "wire:" target/profile_chan_smoke.txt
# Socket-backed runtime gate: probe whether the sandbox allows sockets
# (TCP loopback first, Unix-domain fallback) with the node binary's
# probe mode, then run the tcp suites over real node processes — fault
# tolerance (a killed/wedged node must yield a typed error, no hang, no
# partial artifact), wire accounting with cross-process ByeStats
# reconciliation, whole-suite byte-identity against sm_opt, and the
# profile-report smoke with its predicted-vs-measured latency table.
# A sandbox with no sockets logs the skip and stays green (the test
# gates themselves also self-skip via tcp_available()).
if ./target/release/fgdsm-node --probe tcp; then
    FGDSM_NET=tcp
elif ./target/release/fgdsm-node --probe uds; then
    echo "ci: TCP loopback binds forbidden; falling back to Unix-domain sockets"
    FGDSM_NET=uds
else
    echo "ci: sandbox forbids sockets; skipping the tcp runtime gate"
    FGDSM_NET=
fi
if [ -n "$FGDSM_NET" ]; then
    export FGDSM_NET
    cargo test -q --test tcp_fault -- --nocapture
    cargo test -q -p fgdsm-bench --test wire_tcp
    cargo test -q -p fgdsm-bench --test determinism tcp_is_byte_identical_to_sm_opt
    # Telemetry gate: canonical artifacts byte-identical metrics on/off,
    # and a metered tcp suite populating per-class histograms on both
    # sides of the socket, conserving payload accounting, and splicing a
    # merged coordinator+worker Perfetto trace the JSON parser accepts.
    cargo test -q -p fgdsm-bench --test telemetry
    # The tcp profile-report smoke additionally self-asserts the
    # calibration rows (Table-1 predicted vs measured histograms) and the
    # merged Chrome document; scratch output paths keep the committed
    # bench-scale calibration.json and the merged-trace export untouched.
    FGDSM_TEST=1 FGDSM_BACKEND=tcp FGDSM_PROFILE_OUT=target/profile_tcp_smoke.json \
        FGDSM_CALIB_OUT=target/calibration_smoke.json \
        FGDSM_MERGED_CHROME=target/merged_chrome_smoke.json \
        cargo run --release -q -p fgdsm-bench --bin profile_report -- jacobi \
        > target/profile_tcp_smoke.txt
    grep -q "predicted vs measured wire latency" target/profile_tcp_smoke.txt
    grep -q "calibration" target/profile_tcp_smoke.txt
    unset FGDSM_NET
fi
# Perf-trend tracker: one tiny-scale metered sweep appended to a scratch
# JSONL (the committed bench-scale trend.jsonl is append-only and only
# grows at landing time), then schema-validate both the scratch file and
# the committed history. Runs on chan when the sandbox forbids sockets.
rm -f target/trend_smoke.jsonl
FGDSM_TEST=1 FGDSM_TREND_RUNS=1 FGDSM_TREND_OUT=target/trend_smoke.jsonl \
    cargo run --release -q -p fgdsm-bench --bin perf_trend
FGDSM_TREND_OUT=target/trend_smoke.jsonl \
    cargo run --release -q -p fgdsm-bench --bin perf_trend -- check
cargo run --release -q -p fgdsm-bench --bin perf_trend -- check
# Bounded model checker: exhaustive small-model closure of the abstract
# coherence protocol + §4.2 contract (both protocol variants), the
# must-catch mutation sweep (each seeded bug yields a minimal printed
# counterexample), and conformance replays of enumerated sequences
# through the real Dsm on the fast path and the chan wire path.
cargo test -q -p fgdsm-model
# Differential fuzz corpus: a fixed seed corpus (200 cases unless the
# caller overrides FGDSM_FUZZ_CASES) through reference vs all backends.
# A failure prints the failing seed and a shrunk standalone reproducer.
cargo test -q --test fuzz_corpus -- --nocapture
# A 50-case slice of the same corpus with the strict wire mode forced on
# the whole oracle matrix — cheap insurance that envelope routing stays
# divergence-free under randomized programs, not just the curated suite.
FGDSM_WIRE=strict FGDSM_FUZZ_CASES=50 cargo test -q --test fuzz_corpus -- --nocapture
# Property suites (proptest is an optional, offline-vendored dev feature).
cargo test -q --workspace \
    --features fgdsm-section/proptest,fgdsm-tempest/proptest,fgdsm-protocol/proptest,fgdsm-hpf/proptest
cargo clippy --all-targets -- -D warnings
cargo fmt --check
