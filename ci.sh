#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
# Runs offline — no network, no external services.
set -eux

cargo build --release
# Tier-1 suite under both compute-phase modes: serial and 4 threads.
# Reports are virtual-time and must be identical either way.
FGDSM_PAR=0 cargo test -q
FGDSM_PAR=4 cargo test -q
cargo test -q --workspace
# Differential fuzz corpus: a fixed seed corpus (200 cases unless the
# caller overrides FGDSM_FUZZ_CASES) through reference vs all backends.
# A failure prints the failing seed and a shrunk standalone reproducer.
cargo test -q --test fuzz_corpus -- --nocapture
# Property suites (proptest is an optional, offline-vendored dev feature).
cargo test -q --workspace \
    --features fgdsm-section/proptest,fgdsm-tempest/proptest,fgdsm-protocol/proptest,fgdsm-hpf/proptest
cargo clippy --all-targets -- -D warnings
cargo fmt --check
