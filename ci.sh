#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
# Runs offline — no network, no external services.
set -eux

cargo build --release
# Tier-1 suite under both superstep parallelism modes: serial and 4
# threads (FGDSM_PAR drives the compute phase AND the resolve phase's
# plan/apply stage). Reports are virtual-time and must be identical
# either way.
FGDSM_PAR=0 cargo test -q
FGDSM_PAR=4 cargo test -q
cargo test -q --workspace
# Host-perf harness smoke: one timed run of the suite at tiny scale must
# produce a parseable, full-matrix host_perf.json (written to a scratch
# path so the committed bench-scale artifact is untouched), then the
# smoke suite validates the committed artifact too.
FGDSM_TEST=1 FGDSM_BENCH_RUNS=1 FGDSM_BENCH_OUT=target/host_perf_smoke.json \
    cargo run --release -q -p fgdsm-bench --bin host_perf
cargo test -q -p fgdsm-bench --test host_perf_smoke
# Differential fuzz corpus: a fixed seed corpus (200 cases unless the
# caller overrides FGDSM_FUZZ_CASES) through reference vs all backends.
# A failure prints the failing seed and a shrunk standalone reproducer.
cargo test -q --test fuzz_corpus -- --nocapture
# Property suites (proptest is an optional, offline-vendored dev feature).
cargo test -q --workspace \
    --features fgdsm-section/proptest,fgdsm-tempest/proptest,fgdsm-protocol/proptest,fgdsm-hpf/proptest
cargo clippy --all-targets -- -D warnings
cargo fmt --check
