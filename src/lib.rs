//! # fgdsm — HPF communication optimization for fine-grain DSM
//!
//! A from-scratch Rust reproduction of *"Optimizing Communication in HPF
//! Programs for Fine-Grain Distributed Shared Memory"* (Satish Chandra and
//! James R. Larus, PPoPP 1997): a mini-HPF compiler front end whose access
//! analysis inserts run-time calls that bypass a fine-grain DSM's default
//! coherence protocol with compiler-orchestrated, sender-initiated block
//! transfers.
//!
//! This crate is a facade re-exporting the subsystem crates:
//!
//! * [`tempest`] — the simulated Tempest-style cluster substrate
//!   (fine-grain access control, active-message cost model, virtual time);
//! * [`protocol`] — the default eager-invalidate multiple-writer RC
//!   protocol plus the §4.2 compiler-directed primitives and the
//!   message-passing backend;
//! * [`section`] — the omega-lite array-section algebra;
//! * [`net`] — the socket-backed multi-process transport behind the
//!   `tcp` backend: loopback TCP / Unix-domain links to spawned
//!   `fgdsm-node` worker processes;
//! * [`hpf`] — the mini-HPF IR, access-set analysis, planner and
//!   executors (the paper's contribution);
//! * [`apps`] — the six-application benchmark suite of Table 2.
//!
//! ## Quickstart
//!
//! ```
//! use fgdsm::hpf::{execute, ExecConfig};
//! use fgdsm::apps::{jacobi, Scale};
//!
//! let params = jacobi::Params::at(Scale::Test);
//! let program = jacobi::build(&params);
//! let unopt = execute(&program, &ExecConfig::sm_unopt(8));
//! let opt = execute(&program, &ExecConfig::sm_opt(8));
//! assert!(opt.report.avg_misses() < unopt.report.avg_misses());
//! assert_eq!(opt.array(&program, jacobi::A), unopt.array(&program, jacobi::A));
//! ```

pub use fgdsm_apps as apps;
pub use fgdsm_hpf as hpf;
pub use fgdsm_net as net;
pub use fgdsm_protocol as protocol;
pub use fgdsm_section as section;
pub use fgdsm_tempest as tempest;
