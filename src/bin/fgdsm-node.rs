//! The `tcp` backend's worker process: one per node, spawned by
//! `SocketTransport`. Connects back to the coordinator
//! (`FGDSM_NODE_ADDR`), introduces itself (`FGDSM_NODE_ID`), and serves
//! wire batches against its shard mirror until `Bye`. See
//! `fgdsm_net::serve` for the protocol.
//!
//! Also doubles as the CI socket probe:
//!
//!     fgdsm-node --probe tcp   # exit 0 iff a TCP loopback bind works
//!     fgdsm-node --probe uds   # exit 0 iff a Unix-socket bind works

use fgdsm_net::{probe, serve_from_env, NetKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--probe") {
        let kind = match args.get(2).map(String::as_str) {
            Some("tcp") | None => NetKind::Tcp,
            Some("uds") => NetKind::Uds,
            Some(other) => {
                eprintln!("fgdsm-node --probe: unknown kind {other:?} (want tcp or uds)");
                std::process::exit(2);
            }
        };
        std::process::exit(if probe(kind) { 0 } else { 1 });
    }
    if let Err(e) = serve_from_env() {
        let id = std::env::var("FGDSM_NODE_ID").unwrap_or_else(|_| "?".into());
        eprintln!("fgdsm-node {id}: {e}");
        std::process::exit(1);
    }
}
